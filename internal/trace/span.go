package trace

import (
	"sort"

	"repro/internal/sim"
)

// The span tracer follows one message end-to-end through the stack — node
// process -> VME/DMA -> CAB kernel thread -> transport -> datalink -> HUB
// port(s) -> fiber -> receive path — with parent/child causality and
// per-layer timing, so any send can be decomposed into the paper-style
// latency budget of §4.1/§6.2 (which the prototype could only produce for
// the crossbar: the instrumentation board saw the HUB, and the software
// layers were hand-timed).
//
// Convention (matching Recorder): a nil *Tracer is valid and records
// nothing, and every *Span method is nil-receiver safe, so components are
// instrumented unconditionally and the untraced hot path stays
// allocation-free.

// Layer names used by the built-in instrumentation. Spans are grouped by
// layer when building latency-breakdown tables.
const (
	LayerApp       = "app"       // application / Nectarine
	LayerColl      = "coll"      // collective-communication subsystem
	LayerNode      = "node"      // node process software
	LayerVME       = "vme"       // VME bus transfers
	LayerKernel    = "kernel"    // CAB kernel (context switches)
	LayerTransport = "transport" // transport protocol processing
	LayerDatalink  = "datalink"  // datalink send/receive software
	LayerDMA       = "dma"       // CAB DMA channel transfers
	LayerHub       = "hub"       // HUB port/crossbar transit
	LayerFiber     = "fiber"     // fiber serialization + propagation
)

// Span is one timed interval attributed to a layer and component, with an
// optional parent forming a causality tree rooted at the originating send.
type Span struct {
	tr     *Tracer
	parent *Span

	id    uint64
	layer string
	comp  string // component, e.g. "cab0", "hub1.p3"
	name  string

	start sim.Time
	end   sim.Time
	ended bool

	// errFlag marks the tree anomalous (set on the root by MarkError);
	// the tail sampler always retains errored trees.
	errFlag bool
	// tag classifies a root span for per-class tail-sampling bounds (the
	// transport stamps the wire protocol byte; 0 = untagged).
	tag uint8
	// tailMark records the tail sampler's verdict on a root: 0 undecided,
	// tailKept retained, tailDropped discarded (late children follow it).
	tailMark int8
}

// ID returns the span's tracer-unique id (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Parent returns the parent span (nil for roots).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// Root walks to the tree root (the originating send).
func (s *Span) Root() *Span {
	if s == nil {
		return nil
	}
	r := s
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Layer returns the span's layer.
func (s *Span) Layer() string {
	if s == nil {
		return ""
	}
	return s.layer
}

// Comp returns the component the span is attributed to.
func (s *Span) Comp() string {
	if s == nil {
		return ""
	}
	return s.comp
}

// Name returns the span's operation name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's start time.
func (s *Span) Start() sim.Time {
	if s == nil {
		return 0
	}
	return s.start
}

// EndTime returns the span's end time (its start if still open).
func (s *Span) EndTime() sim.Time {
	if s == nil {
		return 0
	}
	if !s.ended {
		return s.start
	}
	return s.end
}

// Ended reports whether the span was closed.
func (s *Span) Ended() bool { return s != nil && s.ended }

// Duration returns end-start (0 while open).
func (s *Span) Duration() sim.Time {
	if s == nil || !s.ended {
		return 0
	}
	return s.end - s.start
}

// End closes the span at the current simulated time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.eng.Now())
}

// EndAt closes the span at t (which may be in the simulated future: hardware
// pipelines know their completion time when the transfer starts). Closing an
// already-closed span extends it if t is later. The first close of a root
// span is the tail sampler's decision point: the buffered tree is retained
// or discarded there (tail.go).
func (s *Span) EndAt(t sim.Time) {
	if s == nil {
		return
	}
	if t < s.start {
		t = s.start
	}
	first := !s.ended
	if first || t > s.end {
		s.end = t
		s.ended = true
	}
	if first && s.parent == nil && s.tr != nil && s.tr.tail != nil {
		s.tr.tailDecide(s)
	}
}

// MarkError flags the span's tree as anomalous (a drop, decode failure, or
// protocol error happened somewhere along it). The flag lives on the root;
// the tail sampler always retains errored trees that are still undecided.
func (s *Span) MarkError() {
	if s == nil {
		return
	}
	s.Root().errFlag = true
}

// Errored reports whether the span's tree was marked anomalous.
func (s *Span) Errored() bool { return s != nil && s.Root().errFlag }

// SetTag classifies the span for per-class tail-sampling bounds (the
// transport stamps root message spans with the wire protocol byte).
func (s *Span) SetTag(tag uint8) {
	if s == nil {
		return
	}
	s.tag = tag
}

// Tag returns the span's classification tag (0 for nil or untagged).
func (s *Span) Tag() uint8 {
	if s == nil {
		return 0
	}
	return s.tag
}

// Child opens a sub-span starting now. A nil receiver yields a nil child,
// so causality chains cost nothing when tracing is off.
func (s *Span) Child(layer, comp, name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s, layer, comp, name, s.tr.eng.Now())
}

// ChildAt opens a sub-span with an explicit start time (e.g. an item's
// first-byte arrival, which precedes the event that processes it).
func (s *Span) ChildAt(at sim.Time, layer, comp, name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(s, layer, comp, name, at)
}

// Tracer collects spans in creation order. A nil *Tracer is valid and
// records nothing. With tail-based sampling enabled (EnableTailSampling),
// spans buffer per tree until the root closes, and only anomalous or
// head-sampled trees are retained.
type Tracer struct {
	eng     *sim.Engine
	limit   int
	nextID  uint64
	spans   []*Span
	dropped int64

	// tail is the tail-sampling state (tail.go); nil when disabled — the
	// default, in which every span is retained up to limit.
	tail *tailState
}

// NewTracer returns a tracer bound to the engine. limit bounds retained
// spans (0 = unlimited); spans beyond the limit are counted but not
// retained, and their children attach to the nearest retained ancestor
// context (they come back nil).
func NewTracer(eng *sim.Engine, limit int) *Tracer {
	return &Tracer{eng: eng, limit: limit}
}

// Start opens a root span (parent nil) or a child of parent, starting now.
func (t *Tracer) Start(parent *Span, layer, comp, name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(parent, layer, comp, name, t.eng.Now())
}

// StartAt is Start with an explicit start time.
func (t *Tracer) StartAt(parent *Span, at sim.Time, layer, comp, name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(parent, layer, comp, name, at)
}

func (t *Tracer) start(parent *Span, layer, comp, name string, at sim.Time) *Span {
	if t.tail == nil && t.limit > 0 && len(t.spans) >= t.limit {
		t.dropped++
		return nil
	}
	t.nextID++
	s := &Span{tr: t, parent: parent, id: t.nextID, layer: layer, comp: comp, name: name, start: at}
	if t.tail != nil {
		t.tailAdmit(s)
	} else {
		t.spans = append(t.spans, s)
	}
	return s
}

// retain appends a span to the retained set, honoring the limit.
func (t *Tracer) retain(s *Span) {
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Spans returns all retained spans in creation order.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Dropped returns how many spans were not retained because of the limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Tree returns root and every retained descendant of root, in creation
// order.
func (t *Tracer) Tree(root *Span) []*Span {
	if t == nil || root == nil {
		return nil
	}
	var out []*Span
	for _, s := range t.spans {
		for a := s; a != nil; a = a.parent {
			if a == root {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// Roots returns the retained root spans in creation order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for _, s := range t.spans {
		if s.parent == nil {
			out = append(out, s)
		}
	}
	return out
}

// LayerStat is one row of a latency breakdown.
type LayerStat struct {
	Layer string
	Spans int
	// Total is the sum of span durations in the layer (overlapping spans
	// in one layer are double-counted: it is attribution, not wall time).
	Total sim.Time
	// Busy is the merged-union length of the layer's span intervals.
	Busy sim.Time
}

// Breakdown groups spans by layer. Rows are sorted by descending Total,
// ties broken by layer name, so output is deterministic.
func Breakdown(spans []*Span) []LayerStat {
	byLayer := make(map[string]*LayerStat)
	order := []string{}
	perLayer := make(map[string][]*Span)
	for _, s := range spans {
		if !s.Ended() {
			continue
		}
		st, ok := byLayer[s.layer]
		if !ok {
			st = &LayerStat{Layer: s.layer}
			byLayer[s.layer] = st
			order = append(order, s.layer)
		}
		st.Spans++
		st.Total += s.Duration()
		perLayer[s.layer] = append(perLayer[s.layer], s)
	}
	out := make([]LayerStat, 0, len(order))
	for _, l := range order {
		st := byLayer[l]
		st.Busy = Union(perLayer[l])
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}

// Union returns the total length of the union of the spans' [start, end)
// intervals — the time at least one of them was active.
func Union(spans []*Span) sim.Time {
	type iv struct{ a, b sim.Time }
	ivs := make([]iv, 0, len(spans))
	for _, s := range spans {
		if s.Ended() && s.end > s.start {
			ivs = append(ivs, iv{s.start, s.end})
		}
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].a != ivs[j].a {
			return ivs[i].a < ivs[j].a
		}
		return ivs[i].b < ivs[j].b
	})
	var total sim.Time
	var curA, curB sim.Time
	active := false
	for _, v := range ivs {
		if !active {
			curA, curB, active = v.a, v.b, true
			continue
		}
		if v.a > curB {
			total += curB - curA
			curA, curB = v.a, v.b
			continue
		}
		if v.b > curB {
			curB = v.b
		}
	}
	if active {
		total += curB - curA
	}
	return total
}

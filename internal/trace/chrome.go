package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Chrome trace-event (Perfetto-compatible) export: a recorded run can be
// opened in ui.perfetto.dev or chrome://tracing. Each component (CAB board,
// HUB port, fiber link) becomes a "process", each layer a "thread" within
// it, and each span a complete ("X") event. Simulated nanoseconds map to
// trace microseconds (the trace-event timestamp unit) with fractional
// microseconds preserving nanosecond resolution.
//
// Output is byte-deterministic for a deterministic run: events are emitted
// in span-creation order and pid/tid assignment follows first appearance.

// chromeEvent is one trace-event JSON object. Field order (= marshal order)
// matters only for byte-determinism, which struct marshaling guarantees.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  *float64        `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args json.RawMessage `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func toUS(t sim.Time) float64 { return float64(t) / 1000.0 }

// WriteChrome writes all retained spans as Chrome trace-event JSON. Spans
// still open are clamped to the engine's current time. A nil tracer writes
// an empty (but valid) trace.
func (t *Tracer) WriteChrome(w io.Writer) error {
	f := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	if t != nil {
		now := t.eng.Now()

		// pid per component, tid per (component, layer), both assigned in
		// first-appearance order so repeated runs yield identical files.
		pids := map[string]int{}
		type compLayer struct{ comp, layer string }
		tids := map[compLayer]int{}
		nextTid := map[string]int{}

		for _, s := range t.spans {
			pid, ok := pids[s.comp]
			if !ok {
				pid = len(pids) + 1
				pids[s.comp] = pid
				meta, _ := json.Marshal(map[string]string{"name": s.comp})
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: "process_name", Ph: "M", Pid: pid, Args: meta,
				})
			}
			cl := compLayer{s.comp, s.layer}
			tid, ok := tids[cl]
			if !ok {
				nextTid[s.comp]++
				tid = nextTid[s.comp]
				tids[cl] = tid
				meta, _ := json.Marshal(map[string]string{"name": s.layer})
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: meta,
				})
			}

			end := s.end
			if !s.ended {
				end = now
			}
			if end < s.start {
				end = s.start
			}
			dur := toUS(end - s.start)
			args := fmt.Sprintf(`{"span":%d,"parent":%d}`, s.id, s.parent.ID())
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: s.name, Cat: s.layer, Ph: "X",
				Ts: toUS(s.start), Dur: &dur,
				Pid: pid, Tid: tid,
				Args: json.RawMessage(args),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

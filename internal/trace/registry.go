package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Gauge is a level metric (queue occupancy, window in flight). Besides the
// instantaneous value it integrates value*dt, yielding the time-weighted
// mean over the gauge's lifetime — the number the paper's queueing
// discussions care about. A nil *Gauge is valid and records nothing.
type Gauge struct {
	name     string
	eng      *sim.Engine
	val      int64
	max      int64
	created  sim.Time
	since    sim.Time // time of last value change
	weighted float64  // integral of val dt over [created, since]
}

// NewGauge returns a zeroed gauge opening its window now.
func NewGauge(name string, eng *sim.Engine) *Gauge {
	now := eng.Now()
	return &Gauge{name: name, eng: eng, created: now, since: now}
}

// Name returns the gauge's display name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set records a new level at the current simulated time.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	now := g.eng.Now()
	g.weighted += float64(g.val) * float64(now-g.since)
	g.since = now
	g.val = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.Set(g.val + delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.val
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Mean returns the time-weighted mean level from gauge creation to now.
func (g *Gauge) Mean() float64 {
	if g == nil {
		return 0
	}
	now := g.eng.Now()
	window := now - g.created
	if window <= 0 {
		return float64(g.val)
	}
	w := g.weighted + float64(g.val)*float64(now-g.since)
	return w / float64(window)
}

// Registry is the metrics registry: components register named counters,
// gauges, histograms, and read-out functions; experiments snapshot, diff,
// and export it. A nil *Registry is valid: every lookup returns a nil
// instrument whose methods record nothing, so the uninstrumented hot path
// stays allocation-free.
type Registry struct {
	eng      *sim.Engine
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry bound to the engine.
func NewRegistry(eng *sim.Engine) *Registry {
	return &Registry{
		eng:      eng,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := NewCounter(name)
	r.counters[name] = c
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := NewGauge(name, r.eng)
	r.gauges[name] = g
	return g
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := NewHistogram(name)
	r.hists[name] = h
	return h
}

// Func registers a read-out metric: fn is evaluated at snapshot time. It
// lets components expose existing internal counters (datalink stats, CPU
// busy time, port counters) without double bookkeeping on the hot path.
// Re-registering a name replaces the function.
func (r *Registry) Func(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.funcs[name] = fn
}

// HistSummary is a histogram's exported summary.
type HistSummary struct {
	Count int      `json:"count"`
	Min   sim.Time `json:"min"`
	P50   sim.Time `json:"p50"`
	Mean  sim.Time `json:"mean"`
	P95   sim.Time `json:"p95"`
	Max   sim.Time `json:"max"`
}

// GaugeValue is a gauge's exported state.
type GaugeValue struct {
	Value int64   `json:"value"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
}

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	At       sim.Time               `json:"at"`
	Counters map[string]int64       `json:"counters,omitempty"`
	Gauges   map[string]GaugeValue  `json:"gauges,omitempty"`
	Hists    map[string]HistSummary `json:"histograms,omitempty"`
	Funcs    map[string]float64     `json:"metrics,omitempty"`
}

// Snapshot captures every metric at the current simulated time.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	s := &Snapshot{
		At:       r.eng.Now(),
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]GaugeValue, len(r.gauges)),
		Hists:    make(map[string]HistSummary, len(r.hists)),
		Funcs:    make(map[string]float64, len(r.funcs)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = GaugeValue{Value: g.Value(), Max: g.Max(), Mean: g.Mean()}
	}
	for n, h := range r.hists {
		s.Hists[n] = HistSummary{
			Count: h.Count(), Min: h.Min(), P50: h.Median(),
			Mean: h.Mean(), P95: h.Quantile(0.95), Max: h.Max(),
		}
	}
	for n, fn := range r.funcs {
		s.Funcs[n] = fn()
	}
	return s
}

// Diff returns a snapshot whose counters and read-out metrics are the
// deltas since prev (gauges and histograms carry the newer state: they are
// levels, not rates).
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	d := &Snapshot{
		At:       s.At,
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   s.Gauges,
		Hists:    s.Hists,
		Funcs:    make(map[string]float64, len(s.Funcs)),
	}
	for n, v := range s.Counters {
		d.Counters[n] = v - prev.Counters[n]
	}
	for n, v := range s.Funcs {
		d.Funcs[n] = v - prev.Funcs[n]
	}
	return d
}

// sortedKeys returns m's keys in sorted order for deterministic rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Text renders the snapshot as aligned name/value lines, sorted by name.
func (s *Snapshot) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics at %v\n", s.At)
	for _, n := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "  %-44s %d\n", n, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Funcs) {
		v := s.Funcs[n]
		if v == float64(int64(v)) {
			fmt.Fprintf(&b, "  %-44s %d\n", n, int64(v))
		} else {
			fmt.Fprintf(&b, "  %-44s %.2f\n", n, v)
		}
	}
	for _, n := range sortedKeys(s.Gauges) {
		g := s.Gauges[n]
		fmt.Fprintf(&b, "  %-44s cur=%d max=%d mean=%.2f\n", n, g.Value, g.Max, g.Mean)
	}
	for _, n := range sortedKeys(s.Hists) {
		h := s.Hists[n]
		fmt.Fprintf(&b, "  %-44s n=%d min=%v p50=%v mean=%v p95=%v max=%v\n",
			n, h.Count, h.Min, h.P50, h.Mean, h.P95, h.Max)
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON. Map keys are emitted in
// sorted order (encoding/json), so output is byte-deterministic.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Text snapshots the registry and renders it.
func (r *Registry) Text() string { return r.Snapshot().Text() }

// JSON snapshots the registry and renders it as JSON.
func (r *Registry) JSON() ([]byte, error) { return r.Snapshot().JSON() }

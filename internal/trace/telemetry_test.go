package trace

import (
	"testing"

	"repro/internal/sim"
)

// The continuous-telemetry plane snapshots the registry repeatedly during
// a run (the fleet endpoint renders one exposition per tick). These tests
// pin the semantics that makes that safe: snapshotting is read-only — a
// gauge's time-weighted mean keeps integrating across snapshot and diff
// boundaries exactly as if nobody had looked.

func TestGaugeMeanAcrossSnapshotBoundaries(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e)
	g := r.Gauge("q")
	var mid, end GaugeValue
	// Level 0 over [0,10), 6 over [10,20): mean 3.0 at t=20.
	e.At(10, func() { g.Set(6) })
	e.At(20, func() { mid = r.Snapshot().Gauges["q"] })
	// Level 6 over [20,40): mean at t=40 is (0*10 + 6*30)/40 = 4.5, and
	// must come out the same even though a snapshot was taken at t=20.
	e.At(40, func() { end = r.Snapshot().Gauges["q"] })
	e.Run()

	if mid.Value != 6 || mid.Mean != 3.0 {
		t.Fatalf("mid snapshot = %+v, want value 6 mean 3.0", mid)
	}
	if end.Value != 6 || end.Mean != 4.5 {
		t.Fatalf("end snapshot = %+v, want value 6 mean 4.5 (snapshot must not reset the integral)", end)
	}
}

func TestGaugeAcrossDiffBoundaries(t *testing.T) {
	e := sim.NewEngine()
	r := NewRegistry(e)
	g := r.Gauge("q")
	r.Counter("ops").Add(2)
	var before, after *Snapshot
	e.At(10, func() { g.Set(4); before = r.Snapshot() })
	e.At(30, func() {
		g.Set(8)
		r.Counter("ops").Add(5)
		after = r.Snapshot()
	})
	e.Run()

	d := after.Diff(before)
	// Counters diff to rates; gauges are levels and must carry the newer
	// absolute state — value, high-water mark, and lifetime mean.
	if d.Counters["ops"] != 5 {
		t.Fatalf("diffed counter = %d, want 5", d.Counters["ops"])
	}
	gv := d.Gauges["q"]
	if gv.Value != 8 || gv.Max != 8 {
		t.Fatalf("diffed gauge = %+v, want value 8 max 8", gv)
	}
	// Lifetime mean at t=30: 0 over [0,10), 4 over [10,30) = 8/3.
	if want := 8.0 / 3.0; gv.Mean != want {
		t.Fatalf("diffed gauge mean = %v, want %v (lifetime, not window)", gv.Mean, want)
	}
	// Diffing must not have disturbed the live gauge.
	if g.Value() != 8 || g.Max() != 8 {
		t.Fatalf("live gauge disturbed by diff: value %d max %d", g.Value(), g.Max())
	}
}

func TestHistogramMergeEmptyAndNil(t *testing.T) {
	h := NewHistogram("lat")
	h.Add(100)
	h.Add(300)

	h.Merge(nil)                   // nil other: no-op
	h.Merge(NewHistogram("empty")) // empty other: no-op
	if h.Count() != 2 || h.Min() != 100 || h.Max() != 300 {
		t.Fatalf("merge of nil/empty changed state: count %d min %v max %v", h.Count(), h.Min(), h.Max())
	}

	// Merging into an empty histogram adopts the other's bounds exactly
	// (the empty side's sentinel min must not leak through).
	into := NewHistogram("into")
	into.Merge(h)
	if into.Count() != 2 || into.Min() != 100 || into.Max() != 300 || into.Mean() != 200 {
		t.Fatalf("merge into empty: count %d min %v max %v mean %v",
			into.Count(), into.Min(), into.Max(), into.Mean())
	}

	var nilh *Histogram
	nilh.Merge(h) // nil receiver: no-op, no panic
	if nilh.Count() != 0 {
		t.Fatal("nil receiver should stay empty")
	}
}

func TestHistogramMergeMismatchedBounds(t *testing.T) {
	// Two distributions whose ranges do not overlap: the merged min/max
	// must span both, and quantiles must be computed over the union.
	low := NewHistogram("low")
	for _, v := range []sim.Time{10, 20, 30} {
		low.Add(v)
	}
	high := NewHistogram("high")
	for _, v := range []sim.Time{1000, 2000} {
		high.Add(v)
	}

	low.Merge(high)
	if low.Count() != 5 {
		t.Fatalf("count = %d, want 5", low.Count())
	}
	if low.Min() != 10 || low.Max() != 2000 {
		t.Fatalf("bounds = [%v, %v], want [10, 2000]", low.Min(), low.Max())
	}
	if got := low.Median(); got != 30 {
		t.Fatalf("median = %v, want 30", got)
	}
	if want := sim.Time((10 + 20 + 30 + 1000 + 2000) / 5); low.Mean() != want {
		t.Fatalf("mean = %v, want %v", low.Mean(), want)
	}

	// Merge in the other direction must agree.
	high2 := NewHistogram("high2")
	for _, v := range []sim.Time{1000, 2000} {
		high2.Add(v)
	}
	low2 := NewHistogram("low2")
	for _, v := range []sim.Time{10, 20, 30} {
		low2.Add(v)
	}
	high2.Merge(low2)
	if high2.Min() != low.Min() || high2.Max() != low.Max() || high2.Median() != low.Median() {
		t.Fatalf("merge is order-sensitive: [%v %v %v] vs [%v %v %v]",
			high2.Min(), high2.Median(), high2.Max(), low.Min(), low.Median(), low.Max())
	}
}

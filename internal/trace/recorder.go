package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// EventKind classifies recorded events, mirroring what the prototype's
// instrumentation board could observe on the crossbar and controller.
type EventKind int

// Recorded event kinds.
const (
	EvConnOpen EventKind = iota // crossbar connection established
	EvConnClose
	EvConnRetry   // open attempt deferred (output busy / not ready)
	EvCommand     // command executed
	EvPacketIn    // packet entered an input queue
	EvPacketOut   // packet left through an output register
	EvPacketDrop  // packet discarded (overflow, disabled port, no conn)
	EvReply       // reply generated
	EvFrameError  // framing/corruption error detected
	EvLock        // lock acquired
	EvUnlock      // lock released
	EvUserDefined // free-form software event
)

var kindNames = map[EventKind]string{
	EvConnOpen:    "conn-open",
	EvConnClose:   "conn-close",
	EvConnRetry:   "conn-retry",
	EvCommand:     "command",
	EvPacketIn:    "packet-in",
	EvPacketOut:   "packet-out",
	EvPacketDrop:  "packet-drop",
	EvReply:       "reply",
	EvFrameError:  "frame-error",
	EvLock:        "lock",
	EvUnlock:      "unlock",
	EvUserDefined: "user",
}

// String returns the event kind name.
func (k EventKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Record is one recorded event.
type Record struct {
	At     sim.Time
	Kind   EventKind
	Where  string // component, e.g. "hub0.p3"
	Detail string
}

// Recorder is the simulated instrumentation board: an event log with
// per-kind counters. A nil *Recorder is valid and records nothing, so
// components can be instrumented unconditionally.
type Recorder struct {
	eng     *sim.Engine
	events  []Record
	counts  map[EventKind]int64
	limit   int   // maximum retained events (0 = unlimited)
	dropped int64 // events not retained because the limit was hit
}

// NewRecorder returns a recorder bound to the engine. limit bounds the
// number of retained event records (counters are always exact); 0 means
// unlimited.
func NewRecorder(eng *sim.Engine, limit int) *Recorder {
	return &Recorder{eng: eng, counts: make(map[EventKind]int64), limit: limit}
}

// Record logs an event at the current simulated time.
func (r *Recorder) Record(kind EventKind, where, format string, args ...interface{}) {
	if r == nil {
		return
	}
	r.counts[kind]++
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Record{
		At:     r.eng.Now(),
		Kind:   kind,
		Where:  where,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Count returns the exact number of events of the given kind.
func (r *Recorder) Count(kind EventKind) int64 {
	if r == nil {
		return 0
	}
	return r.counts[kind]
}

// Dropped returns how many events were not retained because the limit was
// hit (counters stay exact regardless).
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the retained event records in time order.
func (r *Recorder) Events() []Record {
	if r == nil {
		return nil
	}
	return r.events
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, ev := range r.events {
		fmt.Fprintf(&b, "%12v %-12s %-12s %s\n", ev.At, ev.Kind, ev.Where, ev.Detail)
	}
	if r.dropped > 0 {
		fmt.Fprintf(&b, "… %d more events not retained (limit %d)\n", r.dropped, r.limit)
	}
	return b.String()
}

// Package trace provides instrumentation for the Nectar simulation: counters,
// latency histograms, throughput meters, and an event recorder modeled on the
// prototype's instrumentation board (paper §4.1), which "can monitor and
// record events related to the crossbar and its controller".
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Histogram accumulates sim.Time samples (latencies) and reports summary
// statistics. By default samples are retained exactly, so quantiles are
// exact; the experiment harness uses modest sample counts. Long fleet runs
// can bound memory with SetCap: past the cap the retained set is decimated
// deterministically (every other retained sample dropped, retention stride
// doubled), trading quantile resolution for constant memory. Count, Min,
// Max, and Mean stay exact either way.
type Histogram struct {
	name    string
	samples []sim.Time
	sorted  bool
	sum     float64
	min     sim.Time
	max     sim.Time
	adds    int64
	// cap bounds retained samples (0: exact retention); stride is the
	// current retention stride (record 1 in stride adds), doubling at
	// every decimation.
	cap    int
	stride int64
}

// NewHistogram returns an empty histogram with a display name.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, min: math.MaxInt64}
}

// SetCap bounds retained samples to at most cap (cap <= 0 restores exact
// retention; already-retained samples are kept either way). When adds
// overflow the cap, the retained set is decimated in place — every other
// retained sample dropped, in current storage order — and the retention
// stride doubles, so the histogram keeps a deterministic 1-in-stride
// subsample from then on. Decimation is a pure function of the add
// sequence: two runs that add the same samples in the same order retain
// identical subsets.
func (h *Histogram) SetCap(cap int) {
	if h == nil {
		return
	}
	if cap < 0 {
		cap = 0
	}
	h.cap = cap
	if cap > 0 && h.stride == 0 {
		h.stride = 1
	}
}

// Cap returns the retained-sample bound (0: exact retention).
func (h *Histogram) Cap() int {
	if h == nil {
		return 0
	}
	return h.cap
}

// Name returns the histogram's display name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Add records one sample. A nil *Histogram is valid and records nothing
// (the registry hands out nil instruments when metrics are disabled).
func (h *Histogram) Add(v sim.Time) {
	if h == nil {
		return
	}
	h.adds++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if h.cap > 0 {
		if (h.adds-1)%h.stride != 0 {
			return // not selected by the current stride
		}
		if len(h.samples) >= h.cap {
			h.decimate()
			if (h.adds-1)%h.stride != 0 {
				return // no longer selected under the doubled stride
			}
		}
	}
	h.samples = append(h.samples, v)
	h.sorted = false
}

// decimate drops every other retained sample (in current storage order)
// and doubles the retention stride.
func (h *Histogram) decimate() {
	kept := h.samples[:0]
	for i := 0; i < len(h.samples); i += 2 {
		kept = append(kept, h.samples[i])
	}
	h.samples = kept
	h.stride *= 2
}

// Samples returns the recorded samples in insertion order (or sorted, if a
// quantile has been computed since the last Add). The slice is the
// histogram's own backing store: callers must not mutate it.
func (h *Histogram) Samples() []sim.Time {
	if h == nil {
		return nil
	}
	return h.samples
}

// Merge folds every sample of other into h (other may be nil or empty).
// The fleet harness uses this to combine per-replica latency
// distributions; because samples are retained exactly, merged quantiles
// are exact too.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for _, v := range other.samples {
		h.Add(v)
	}
}

// Count returns the number of samples added (exact even when a cap has
// decimated the retained set).
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	return int(h.adds)
}

// Retained returns how many samples are actually held (== Count unless a
// cap has decimated the set).
func (h *Histogram) Retained() int {
	if h == nil {
		return 0
	}
	return len(h.samples)
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() sim.Time {
	if h == nil || len(h.samples) == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() sim.Time {
	if h == nil || len(h.samples) == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 if empty). It is exact even when a
// cap has decimated the retained set: the running sum covers every add.
func (h *Histogram) Mean() sim.Time {
	if h == nil || h.adds == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.adds))
}

// Quantile returns the q-quantile using the nearest-rank method. q is
// clamped to [0, 1] (a NaN q reads as 0). It returns 0 for an empty
// histogram.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h == nil || len(h.samples) == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Median returns the 0.5 quantile.
func (h *Histogram) Median() sim.Time { return h.Quantile(0.5) }

// String summarizes the histogram.
func (h *Histogram) String() string {
	if h == nil || len(h.samples) == 0 {
		return fmt.Sprintf("%s: no samples", h.name)
	}
	return fmt.Sprintf("%s: n=%d min=%v p50=%v mean=%v p95=%v max=%v",
		h.name, h.Count(), h.Min(), h.Median(), h.Mean(), h.Quantile(0.95), h.Max())
}

// Counter is a named monotonically non-negative event counter.
type Counter struct {
	name string
	n    int64
}

// NewCounter returns a zeroed counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Name returns the counter's display name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Inc adds one. A nil *Counter is valid and records nothing (the registry
// hands out nil instruments when metrics are disabled).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add adds delta (which may be negative, e.g. queue occupancy deltas).
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.n = 0
}

// Meter measures throughput: bytes (or other units) accumulated over the
// window between Start and the last Add.
type Meter struct {
	name  string
	start sim.Time
	last  sim.Time
	total int64
}

// NewMeter returns a meter whose window opens at start.
func NewMeter(name string, start sim.Time) *Meter {
	return &Meter{name: name, start: start, last: start}
}

// Add records n units delivered at time t.
func (m *Meter) Add(t sim.Time, n int64) {
	m.total += n
	if t > m.last {
		m.last = t
	}
}

// Total returns the accumulated units.
func (m *Meter) Total() int64 { return m.total }

// Elapsed returns the window length.
func (m *Meter) Elapsed() sim.Time { return m.last - m.start }

// Rate returns units per second over the window (0 if the window is empty).
func (m *Meter) Rate() float64 {
	if m.last <= m.start {
		return 0
	}
	return float64(m.total) / (m.last - m.start).Seconds()
}

// RateMbps returns the rate in megabits per second, treating units as bytes.
func (m *Meter) RateMbps() float64 { return m.Rate() * 8 / 1e6 }

// RateMBps returns the rate in megabytes per second, treating units as bytes.
func (m *Meter) RateMBps() float64 { return m.Rate() / 1e6 }

// Table is a simple fixed-width text table builder used by the experiment
// harness to print paper-style result tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Title returns the table's title.
func (t *Table) Title() string { return t.title }

// Headers returns the column headers. Callers must not mutate the slice.
func (t *Table) Headers() []string { return t.headers }

// Rows returns the formatted cell rows. Callers must not mutate them.
func (t *Table) Rows() [][]string { return t.rows }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.headers)
	widths := make([]int, ncol)
	for i, hd := range t.headers {
		widths[i] = len(hd)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < ncol && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, ncol)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

package cab

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// VME models the bus between a node and its CAB (paper §5.2: "The initial
// CAB implementation supports a VME bandwidth of 10 megabytes/second").
// Block transfers (DMA) and programmed I/O share the bus; interrupts in
// both directions carry a small hardware delivery delay.
//
// One VME instance connects exactly one node to one CAB.
type VME struct {
	eng       *sim.Engine
	name      string
	busyUntil sim.Time

	// Programmed I/O moves one 4-byte word per bus transaction and is
	// slower than block mode.
	wordTime sim.Time

	transfers int64
	bytes     int64

	// Interrupt targets, registered by each side.
	nodeIntr func()
	cabIntr  func()
}

// VME timing parameters.
const (
	// vmeWordTime is the programmed-I/O cost per 32-bit word (~2.5 MB/s,
	// typical for single-cycle VME accesses of the era).
	vmeWordTime = 1600 * sim.Nanosecond
	// vmeInterruptDelay is the bus interrupt delivery latency.
	vmeInterruptDelay = 2 * sim.Microsecond
)

// NewVME returns a VME bus.
func NewVME(eng *sim.Engine) *VME {
	return &VME{eng: eng, name: "vme", wordTime: vmeWordTime}
}

// SetName sets the bus's trace component name (e.g. "nodeA.vme").
func (v *VME) SetName(name string) { v.name = name }

// Bytes returns total bytes moved over the bus.
func (v *VME) Bytes() int64 { return v.bytes }

// Transfer queues an n-byte block (DMA) transfer; done runs at completion.
// It returns the completion time.
func (v *VME) Transfer(n int, done func()) sim.Time {
	start := v.eng.Now()
	if start < v.busyUntil {
		start = v.busyUntil
	}
	end := start + sim.Time(n)*VMEByteTime
	v.busyUntil = end
	v.transfers++
	v.bytes += int64(n)
	if done != nil {
		v.eng.At(end, done)
	}
	return end
}

// TransferSpan is Transfer with trace attribution: with a non-nil parent
// span, the bus time this transfer occupies is recorded as a child span in
// the VME layer (nil parent costs nothing).
func (v *VME) TransferSpan(n int, done func(), parent *trace.Span) sim.Time {
	end := v.Transfer(n, done)
	if parent != nil {
		parent.ChildAt(end-sim.Time(n)*VMEByteTime, trace.LayerVME, v.name, "block-xfer").EndAt(end)
	}
	return end
}

// TransferWait blocks the calling process for an n-byte block transfer.
func (v *VME) TransferWait(p *sim.Proc, n int) {
	sig := sim.NewSignal(p.Engine())
	v.Transfer(n, func() { sig.Broadcast() })
	sig.Wait(p)
}

// TransferWaitSpan is TransferWait with trace attribution.
func (v *VME) TransferWaitSpan(p *sim.Proc, n int, parent *trace.Span) {
	sig := sim.NewSignal(p.Engine())
	v.TransferSpan(n, func() { sig.Broadcast() }, parent)
	sig.Wait(p)
}

// PIOTime returns the bus time to move n bytes with programmed I/O
// (word-at-a-time); the caller charges it to the node CPU, since the
// processor drives every transaction.
func (v *VME) PIOTime(n int) sim.Time {
	words := (n + 3) / 4
	return sim.Time(words) * v.wordTime
}

// OnNodeInterrupt registers the node-side interrupt handler.
func (v *VME) OnNodeInterrupt(fn func()) { v.nodeIntr = fn }

// OnCABInterrupt registers the CAB-side interrupt handler.
func (v *VME) OnCABInterrupt(fn func()) { v.cabIntr = fn }

// InterruptNode raises a VME interrupt at the node ("The CAB invokes these
// services by interrupting the node over the VME bus", paper §6.1).
func (v *VME) InterruptNode() {
	if v.nodeIntr != nil {
		v.eng.After(vmeInterruptDelay, v.nodeIntr)
	}
}

// InterruptCAB raises a VME interrupt at the CAB.
func (v *VME) InterruptCAB() {
	if v.cabIntr != nil {
		v.eng.After(vmeInterruptDelay, v.cabIntr)
	}
}

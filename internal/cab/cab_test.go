package cab

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCPUSequentialJobs(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng)
	var done []sim.Time
	eng.At(0, func() {
		cpu.Submit(PrioThread, "a", 100, func() { done = append(done, eng.Now()) })
		cpu.Submit(PrioThread, "b", 50, func() { done = append(done, eng.Now()) })
	})
	eng.Run()
	if len(done) != 2 || done[0] != 100 || done[1] != 150 {
		t.Fatalf("completions %v, want [100 150]", done)
	}
	if cpu.BusyTime() != 150 {
		t.Fatalf("BusyTime = %v", cpu.BusyTime())
	}
	if !cpu.Idle() {
		t.Fatal("CPU should be idle")
	}
}

func TestCPUInterruptPreemptsThread(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng)
	var thDone, intDone sim.Time
	eng.At(0, func() {
		cpu.Submit(PrioThread, "thread", 1000, func() { thDone = eng.Now() })
	})
	eng.At(300, func() {
		cpu.Submit(PrioInterrupt, "intr", 200, func() { intDone = eng.Now() })
	})
	eng.Run()
	if intDone != 500 {
		t.Fatalf("interrupt done at %v, want 500 (runs immediately)", intDone)
	}
	// Thread had 700 remaining at preemption; resumes at 500 -> 1200.
	if thDone != 1200 {
		t.Fatalf("thread done at %v, want 1200 (stretched by interrupt)", thDone)
	}
	if cpu.BusyTime() != 1200 {
		t.Fatalf("BusyTime = %v, want 1200 (no idle gaps)", cpu.BusyTime())
	}
}

func TestCPUInterruptsDoNotPreemptEachOther(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng)
	var order []string
	eng.At(0, func() {
		cpu.Submit(PrioInterrupt, "i1", 100, func() { order = append(order, "i1") })
	})
	eng.At(10, func() {
		cpu.Submit(PrioInterrupt, "i2", 100, func() { order = append(order, "i2") })
	})
	eng.Run()
	if len(order) != 2 || order[0] != "i1" || order[1] != "i2" {
		t.Fatalf("order %v", order)
	}
	if eng.Now() != 200 {
		t.Fatalf("end %v, want 200 (FIFO, no nesting)", eng.Now())
	}
}

func TestCPUComputeFromProc(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng)
	var at sim.Time
	eng.Go("worker", func(p *sim.Proc) {
		cpu.Compute(p, "work", 500)
		at = p.Now()
	})
	eng.At(100, func() { cpu.Submit(PrioInterrupt, "i", 50, nil) })
	eng.Run()
	if at != 550 {
		t.Fatalf("compute finished at %v, want 550 (500 + 50 stolen)", at)
	}
}

func TestMemoryAllocFree(t *testing.T) {
	m := NewMemory()
	a1, err := m.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Fatal("overlapping allocations")
	}
	if m.Allocated() != 104+200 { // rounded to 8
		t.Fatalf("Allocated = %d", m.Allocated())
	}
	m.Free(a1, 100)
	m.Free(a2, 200)
	if m.Allocated() != 0 {
		t.Fatalf("Allocated after frees = %d", m.Allocated())
	}
	if m.FreeBytes() != DataSize {
		t.Fatalf("FreeBytes = %d, want all of data memory", m.FreeBytes())
	}
	if err := m.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryExhaustion(t *testing.T) {
	m := NewMemory()
	if _, err := m.Alloc(DataSize + 1); err == nil {
		t.Fatal("oversized allocation should fail")
	}
	a, err := m.Alloc(DataSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(8); err == nil {
		t.Fatal("allocation from empty pool should fail")
	}
	m.Free(a, DataSize)
	if _, err := m.Alloc(8); err != nil {
		t.Fatal("allocation after free should succeed")
	}
}

// Property: any interleaving of allocs and frees keeps the free list
// sorted, coalesced, and conserves total bytes.
func TestMemoryAllocatorProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := NewMemory()
		type block struct {
			a Addr
			n int
		}
		var live []block
		for i, s := range sizes {
			n := int(s)%4096 + 1
			if i%3 == 2 && len(live) > 0 {
				// Free a pseudo-randomly chosen live block.
				k := i % len(live)
				m.Free(live[k].a, live[k].n)
				live = append(live[:k], live[k+1:]...)
			} else {
				a, err := m.Alloc(n)
				if err != nil {
					continue
				}
				live = append(live, block{a, n})
			}
			if m.CheckFreeList() != nil {
				return false
			}
		}
		for _, b := range live {
			m.Free(b.a, b.n)
		}
		return m.FreeBytes() == DataSize && m.CheckFreeList() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryProtectionDomains(t *testing.T) {
	m := NewMemory()
	a, _ := m.Alloc(2048)
	userDomain := 5
	// Kernel can always access.
	if err := m.Check(KernelDomain, a, 2048, PermRW); err != nil {
		t.Fatal(err)
	}
	// User domain denied until granted.
	if err := m.Check(userDomain, a, 2048, PermRead); err == nil {
		t.Fatal("unprotected access should fault")
	}
	m.SetPerm(userDomain, a, 2048, PermRead)
	if err := m.Check(userDomain, a, 2048, PermRead); err != nil {
		t.Fatal(err)
	}
	// Read granted but not write.
	if err := m.Check(userDomain, a, 2048, PermWrite); err == nil {
		t.Fatal("write without permission should fault")
	}
	// VME domain is separate.
	if err := m.Check(VMEDomain, a, 16, PermRead); err == nil {
		t.Fatal("VME domain should not inherit user perms")
	}
	if m.Faults() != 3 {
		t.Fatalf("Faults = %d, want 3", m.Faults())
	}
}

func TestMemoryPageGranularity(t *testing.T) {
	m := NewMemory()
	// Grant exactly one page; access crossing into the next page faults.
	base := Addr(DataBase)
	m.SetPerm(7, base, PageSize, PermRW)
	if err := m.Check(7, base, PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(7, base+PageSize-8, 16, PermRW); err == nil {
		t.Fatal("access crossing page boundary should fault")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	a, _ := m.Alloc(64)
	msg := []byte("nectar message body")
	if err := m.Write(KernelDomain, a, msg); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(KernelDomain, a, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	// Out-of-region access fails rather than panics.
	if err := m.Write(KernelDomain, Addr(ProgBase), msg); err == nil {
		t.Fatal("write outside data region should fail")
	}
}

func TestChecksum(t *testing.T) {
	if Checksum(nil) != 0xFFFF {
		t.Fatalf("empty checksum = %#x", Checksum(nil))
	}
	msg := []byte("the quick brown fox")
	c := Checksum(msg)
	if !VerifyChecksum(msg, c) {
		t.Fatal("checksum does not verify")
	}
	// Any single bit flip is detected.
	for i := range msg {
		for bit := uint(0); bit < 8; bit++ {
			msg[i] ^= 1 << bit
			if VerifyChecksum(msg, c) {
				t.Fatalf("bit flip at byte %d bit %d undetected", i, bit)
			}
			msg[i] ^= 1 << bit
		}
	}
}

func TestChecksumOddLength(t *testing.T) {
	a := Checksum([]byte{1, 2, 3})
	b := Checksum([]byte{1, 2, 3, 0})
	if a != b {
		t.Fatalf("odd-length padding mismatch: %#x vs %#x", a, b)
	}
}

// Property: checksum detects any single-byte corruption.
func TestChecksumProperty(t *testing.T) {
	f := func(data []byte, idx uint16, flip byte) bool {
		if len(data) == 0 || flip == 0 {
			return true
		}
		c := Checksum(data)
		i := int(idx) % len(data)
		data[i] ^= flip
		ok := !VerifyChecksum(data, c)
		data[i] ^= flip
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDMAChannelsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMA(eng)
	var tOut, tIn, tVME sim.Time
	eng.At(0, func() {
		d.Transfer(ChanFiberOut, 1000, func() { tOut = eng.Now() })
		d.Transfer(ChanFiberIn, 1000, func() { tIn = eng.Now() })
		d.Transfer(ChanVME, 1000, func() { tVME = eng.Now() })
	})
	eng.Run()
	if tOut != 80_000 {
		t.Fatalf("fiber-out transfer at %v, want 80us (12.5 MB/s)", tOut)
	}
	if tIn != 15_000 {
		t.Fatalf("fiber-in drain at %v, want 15us (66 MB/s memory rate)", tIn)
	}
	if tVME != 100_000 {
		t.Fatalf("VME transfer at %v, want 100us (10 MB/s)", tVME)
	}
}

func TestDMAChannelFIFO(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDMA(eng)
	var done []sim.Time
	eng.At(0, func() {
		d.Transfer(ChanVME, 100, func() { done = append(done, eng.Now()) })
		d.Transfer(ChanVME, 100, func() { done = append(done, eng.Now()) })
	})
	eng.Run()
	if len(done) != 2 || done[0] != 10_000 || done[1] != 20_000 {
		t.Fatalf("completions %v, want [10us 20us]", done)
	}
	if d.Bytes(ChanVME) != 200 || d.Transfers(ChanVME) != 2 {
		t.Fatal("DMA stats wrong")
	}
}

func TestTimers(t *testing.T) {
	eng := sim.NewEngine()
	tm := NewTimers(eng)
	fired := 0
	var canceled *Timer
	eng.At(0, func() {
		tm.Set(100, func() { fired++ })
		canceled = tm.Set(200, func() { fired++ })
	})
	eng.At(50, func() { canceled.Cancel() })
	eng.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Armed() != 2 || tm.Expired() != 1 {
		t.Fatalf("Armed=%d Expired=%d", tm.Armed(), tm.Expired())
	}
	if canceled.Fired() {
		t.Fatal("canceled timer reports fired")
	}
}

func TestVMETransferRate(t *testing.T) {
	eng := sim.NewEngine()
	v := NewVME(eng)
	var end sim.Time
	eng.At(0, func() { v.Transfer(1_000_000, func() { end = eng.Now() }) })
	eng.Run()
	// 1 MB at 10 MB/s = 100 ms.
	if end != 100*sim.Millisecond {
		t.Fatalf("1MB VME transfer took %v, want 100ms", end)
	}
}

func TestVMEInterrupts(t *testing.T) {
	eng := sim.NewEngine()
	v := NewVME(eng)
	var nodeAt, cabAt sim.Time
	v.OnNodeInterrupt(func() { nodeAt = eng.Now() })
	v.OnCABInterrupt(func() { cabAt = eng.Now() })
	eng.At(100, func() { v.InterruptNode() })
	eng.At(200, func() { v.InterruptCAB() })
	eng.Run()
	if nodeAt != 100+vmeInterruptDelay || cabAt != 200+vmeInterruptDelay {
		t.Fatalf("interrupts at %v/%v", nodeAt, cabAt)
	}
}

func TestVMEPIOTime(t *testing.T) {
	v := NewVME(sim.NewEngine())
	if v.PIOTime(4) != vmeWordTime {
		t.Fatalf("PIOTime(4) = %v", v.PIOTime(4))
	}
	if v.PIOTime(5) != 2*vmeWordTime {
		t.Fatalf("PIOTime(5) = %v (rounds up to words)", v.PIOTime(5))
	}
}

func TestBoardNetReady(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBoard(eng, 0, "cab0")
	var waited sim.Time
	eng.Go("datalink", func(p *sim.Proc) {
		b.ClearNetReady()
		b.WaitNetReady(p)
		waited = p.Now()
	})
	eng.At(5000, func() { b.SetNetReady() })
	eng.Run()
	if waited != 5000 {
		t.Fatalf("WaitNetReady returned at %v, want 5000", waited)
	}
}

func TestChannelString(t *testing.T) {
	for _, c := range []Channel{ChanFiberOut, ChanFiberIn, ChanVME, Channel(9)} {
		if c.String() == "" {
			t.Fatal("empty channel name")
		}
	}
}

func TestCPUZeroDurationJobOrdering(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng)
	var order []string
	eng.At(0, func() {
		cpu.Submit(PrioThread, "a", 0, func() { order = append(order, "a") })
		cpu.Submit(PrioThread, "b", 0, func() { order = append(order, "b") })
	})
	eng.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order %v", order)
	}
}

func TestCPUManyInterruptsStretchThread(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng)
	var thDone sim.Time
	eng.At(0, func() {
		cpu.Submit(PrioThread, "th", 1000, func() { thDone = eng.Now() })
	})
	// Five 100ns interrupts land during the computation.
	for i := 1; i <= 5; i++ {
		at := sim.Time(i * 150)
		eng.At(at, func() { cpu.Submit(PrioInterrupt, "i", 100, nil) })
	}
	eng.Run()
	if thDone != 1500 {
		t.Fatalf("thread done at %v, want 1500 (1000 + 5x100 stolen)", thDone)
	}
}

func TestCPUInterruptAfterThreadQueueDrains(t *testing.T) {
	// An interrupt arriving while the CPU is idle runs immediately, and a
	// thread submitted during the interrupt waits its turn.
	eng := sim.NewEngine()
	cpu := NewCPU(eng)
	var order []string
	eng.At(0, func() {
		cpu.Submit(PrioInterrupt, "i", 100, func() {
			order = append(order, "i")
			cpu.Submit(PrioThread, "t", 50, func() { order = append(order, "t") })
		})
	})
	eng.Run()
	if len(order) != 2 || order[0] != "i" || order[1] != "t" {
		t.Fatalf("order %v", order)
	}
	if eng.Now() != 150 {
		t.Fatalf("end %v", eng.Now())
	}
}

func TestCPUNegativeWorkPanics(t *testing.T) {
	eng := sim.NewEngine()
	cpu := NewCPU(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("negative work did not panic")
		}
	}()
	cpu.Submit(PrioThread, "bad", -1, nil)
}

func TestMemorySliceDMAView(t *testing.T) {
	m := NewMemory()
	a, _ := m.Alloc(32)
	s := m.Slice(a, 32)
	copy(s, "dma writes bytes directly")
	got, err := m.Read(KernelDomain, a, 25)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "dma writes bytes directly" {
		t.Fatalf("got %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-region DMA slice did not panic")
		}
	}()
	m.Slice(Addr(ProgBase), 16)
}

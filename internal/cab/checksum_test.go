package cab

import (
	"math/rand"
	"testing"
)

// ChecksumExcluding must agree exactly with the copy-and-zero reference on
// every length parity and field position.
func TestChecksumExcludingMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(300)
		b := make([]byte, n)
		rng.Read(b)
		off := rng.Intn(n/2) * 2
		ref := make([]byte, n)
		copy(ref, b)
		ref[off] = 0
		if off+1 < n {
			ref[off+1] = 0
		}
		if got, want := ChecksumExcluding(b, off), Checksum(ref); got != want {
			t.Fatalf("n=%d off=%d: ChecksumExcluding=%#x, reference=%#x", n, off, got, want)
		}
	}
	// Odd trailing byte excluded.
	b := []byte{1, 2, 3}
	ref := []byte{1, 2, 0}
	if ChecksumExcluding(b, 2) != Checksum(ref) {
		t.Fatal("odd-length exclusion of the trailing byte diverges from reference")
	}
}

func BenchmarkChecksum1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

func BenchmarkChecksumExcluding1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ChecksumExcluding(buf, 30)
	}
}

package cab

// Checksum is the CAB's hardware checksum unit ("hardware checksum
// computation removes this burden from protocol software", paper §5.1).
// It computes the ones'-complement Internet checksum; because the hardware
// computes it on the fly during DMA, no CPU time is charged.
func Checksum(b []byte) uint16 {
	var sum uint32
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether data matches the given checksum.
func VerifyChecksum(b []byte, want uint16) bool {
	return Checksum(b) == want
}

// ChecksumExcluding computes the checksum of b as if the 16-bit word at
// even offset `off` were zero, without copying or mutating b. This is how
// the hardware verifies an embedded checksum field on the fly during DMA:
// the field's bytes are excluded from the running sum as they stream past.
func ChecksumExcluding(b []byte, off int) uint16 {
	var sum uint32
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		if i == off {
			continue
		}
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 && n-1 != off {
		sum += uint32(b[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

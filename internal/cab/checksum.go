package cab

// Checksum is the CAB's hardware checksum unit ("hardware checksum
// computation removes this burden from protocol software", paper §5.1).
// It computes the ones'-complement Internet checksum; because the hardware
// computes it on the fly during DMA, no CPU time is charged.
func Checksum(b []byte) uint16 {
	var sum uint32
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + sum>>16
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether data matches the given checksum.
func VerifyChecksum(b []byte, want uint16) bool {
	return Checksum(b) == want
}

package cab

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// DMA channels (paper §5.1: "The DMA controller is able to manage
// simultaneous data transfers between the incoming and outgoing fibers and
// CAB memory, as well as between VME and CAB memory, leaving the CAB CPU
// free for protocol and application processing").
type Channel int

// DMA channels.
const (
	ChanFiberOut Channel = iota
	ChanFiberIn
	ChanVME
	numChannels
)

// String returns the channel name.
func (c Channel) String() string {
	switch c {
	case ChanFiberOut:
		return "fiber-out"
	case ChanFiberIn:
		return "fiber-in"
	case ChanVME:
		return "vme"
	default:
		return fmt.Sprintf("chan(%d)", int(c))
	}
}

// Per-byte transfer times. The fibers run at 100 Mb/s = 12.5 MB/s; the
// initial VME interface supports 10 MB/s (paper §5.2). The 66 MB/s data
// memory sustains all channels plus the CPU concurrently, so no memory
// contention is modeled (the paper sized it so there is none).
//
// The fiber-in channel drains the input queue at memory speed (the 66 MB/s
// data memory); it can never finish before the packet's last byte arrives,
// which callers enforce with the packet's arrival end time. The fiber-out
// channel is paced by the outgoing fiber itself.
const (
	FiberChanByteTime = 80 * sim.Nanosecond
	DrainByteTime     = 15 * sim.Nanosecond
	VMEByteTime       = 100 * sim.Nanosecond
)

// DMA is the CAB's three-channel DMA controller. Channels operate
// concurrently with each other and with the CPU; transfers on one channel
// are serviced in FIFO order.
type DMA struct {
	eng       *sim.Engine
	name      string
	busyUntil [numChannels]sim.Time
	rate      [numChannels]sim.Time
	transfers [numChannels]int64
	bytes     [numChannels]int64
}

// NewDMA returns a DMA controller with prototype channel rates.
func NewDMA(eng *sim.Engine) *DMA {
	d := &DMA{eng: eng, name: "dma"}
	d.rate[ChanFiberOut] = FiberChanByteTime
	d.rate[ChanFiberIn] = DrainByteTime
	d.rate[ChanVME] = VMEByteTime
	return d
}

// SetName sets the controller's trace component name (e.g. "cab0.dma").
func (d *DMA) SetName(name string) { d.name = name }

// Transfers returns the number of transfers completed or queued on ch.
func (d *DMA) Transfers(ch Channel) int64 { return d.transfers[ch] }

// Bytes returns the bytes moved on ch.
func (d *DMA) Bytes(ch Channel) int64 { return d.bytes[ch] }

// BusyUntil returns when ch finishes its queued work.
func (d *DMA) BusyUntil(ch Channel) sim.Time { return d.busyUntil[ch] }

// Transfer queues n bytes on ch; done (optional) runs at completion.
// It returns the completion time. The CPU is not involved: the kernel
// charges only its own setup cost.
func (d *DMA) Transfer(ch Channel, n int, done func()) sim.Time {
	if n < 0 {
		panic(fmt.Sprintf("cab: negative DMA length %d", n))
	}
	start := d.eng.Now()
	if start < d.busyUntil[ch] {
		start = d.busyUntil[ch]
	}
	end := start + sim.Time(n)*d.rate[ch]
	d.busyUntil[ch] = end
	d.transfers[ch]++
	d.bytes[ch] += int64(n)
	if done != nil {
		d.eng.At(end, done)
	}
	return end
}

// TransferSpan is Transfer with trace attribution: with a non-nil parent
// span, the channel time this transfer occupies is recorded as a child
// span in the DMA layer (nil parent costs nothing). The transfer's span
// starts when the channel begins serving it (after queued work) and ends
// at completion.
func (d *DMA) TransferSpan(ch Channel, n int, done func(), parent *trace.Span) sim.Time {
	end := d.Transfer(ch, n, done)
	if parent != nil {
		parent.ChildAt(end-sim.Time(n)*d.rate[ch], trace.LayerDMA, d.name, ch.String()).EndAt(end)
	}
	return end
}

// TransferWait is Transfer for process context: it blocks until completion.
func (d *DMA) TransferWait(p *sim.Proc, ch Channel, n int) {
	sig := sim.NewSignal(p.Engine())
	d.Transfer(ch, n, func() { sig.Broadcast() })
	sig.Wait(p)
}

// Timer is a cancellable hardware timer ("hardware timers allow time-outs
// to be set by the software with low overhead", paper §5.1).
type Timer struct {
	ev    sim.Event
	eng   *sim.Engine
	fired *bool
}

// Cancel stops the timer if it has not fired.
func (t *Timer) Cancel() {
	if t != nil {
		t.eng.Cancel(t.ev)
	}
}

// Fired reports whether the timer expired.
func (t *Timer) Fired() bool { return *t.fired }

// Timers is the CAB's bank of hardware timers.
type Timers struct {
	eng   *sim.Engine
	set   int64
	fired int64
}

// NewTimers returns the timer bank.
func NewTimers(eng *sim.Engine) *Timers {
	return &Timers{eng: eng}
}

// Set arms a timer to run fn after d.
func (t *Timers) Set(d sim.Time, fn func()) *Timer {
	t.set++
	fired := false
	tm := &Timer{eng: t.eng, fired: &fired}
	tm.ev = t.eng.After(d, func() {
		fired = true
		t.fired++
		fn()
	})
	return tm
}

// Armed returns how many timers were set; Expired how many fired.
func (t *Timers) Armed() int64   { return t.set }
func (t *Timers) Expired() int64 { return t.fired }

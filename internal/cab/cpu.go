// Package cab models the Communication Accelerator Board (paper §5): a
// RISC-based processor board that implements the network protocols,
// interfaces the Nectar-net to a node's VME bus, and can run off-loaded
// application tasks.
//
// The board comprises a CPU (a 16 MHz SPARC in the prototype), a DMA
// controller that moves data between the fibers, CAB memory and the VME bus
// concurrently with computation, program and data memory with per-page
// protection across 32 domains, a hardware checksum unit, and hardware
// timers. Software costs (protocol processing, interrupt handling) are
// charged to the simulated CPU so they appear in end-to-end latency exactly
// as they did on the prototype.
package cab

import (
	"fmt"

	"repro/internal/sim"
)

// Priority of CPU work. Interrupt-level work preempts thread-level work
// (the SPARC reserves a register window for trap handling, paper §6.2.1).
type Priority int

// CPU priorities.
const (
	PrioInterrupt Priority = iota
	PrioThread
)

// job is one unit of CPU work.
type job struct {
	prio      Priority
	remaining sim.Time
	done      func()
	name      string
}

// CPU is a preemptible work server. Work is submitted with a duration and a
// completion callback; interrupt-level work preempts thread-level work,
// whose remaining time resumes afterwards. The model composes costs
// correctly: a thread computation delayed by interrupts finishes late by
// exactly the stolen time.
type CPU struct {
	eng *sim.Engine

	cur      *job
	curEvent sim.Event
	curStart sim.Time

	intq []*job // pending interrupt-level jobs (FIFO)
	thq  []*job // pending thread-level jobs (FIFO)

	busy     sim.Time // accumulated busy time
	jobsDone int64
}

// NewCPU returns an idle CPU.
func NewCPU(eng *sim.Engine) *CPU {
	return &CPU{eng: eng}
}

// BusyTime returns the total time the CPU has spent executing completed or
// partially-executed work.
func (c *CPU) BusyTime() sim.Time { return c.busy }

// JobsDone returns the number of completed jobs.
func (c *CPU) JobsDone() int64 { return c.jobsDone }

// Idle reports whether the CPU has no running or queued work.
func (c *CPU) Idle() bool { return c.cur == nil && len(c.intq) == 0 && len(c.thq) == 0 }

// Submit schedules work of the given duration; done runs on completion.
// Zero-duration work completes via the event queue (preserving ordering).
func (c *CPU) Submit(prio Priority, name string, d sim.Time, done func()) {
	if d < 0 {
		panic(fmt.Sprintf("cab: negative CPU work %v", d))
	}
	j := &job{prio: prio, remaining: d, done: done, name: name}
	if prio == PrioInterrupt {
		c.intq = append(c.intq, j)
		// Preempt thread-level work.
		if c.cur != nil && c.cur.prio == PrioThread {
			c.preempt()
		}
	} else {
		c.thq = append(c.thq, j)
	}
	c.dispatch()
}

// preempt stops the current thread-level job, banking its progress, and
// requeues it at the front of the thread queue.
func (c *CPU) preempt() {
	elapsed := c.eng.Now() - c.curStart
	c.busy += elapsed
	c.cur.remaining -= elapsed
	if c.cur.remaining < 0 {
		c.cur.remaining = 0
	}
	c.eng.Cancel(c.curEvent)
	c.thq = append([]*job{c.cur}, c.thq...)
	c.cur = nil
	c.curEvent = sim.Event{}
}

// dispatch starts the next job if the CPU is free.
func (c *CPU) dispatch() {
	if c.cur != nil {
		return
	}
	var j *job
	switch {
	case len(c.intq) > 0:
		j = c.intq[0]
		c.intq = c.intq[1:]
	case len(c.thq) > 0:
		j = c.thq[0]
		c.thq = c.thq[1:]
	default:
		return
	}
	c.cur = j
	c.curStart = c.eng.Now()
	c.curEvent = c.eng.After(j.remaining, func() {
		c.busy += c.eng.Now() - c.curStart
		c.cur = nil
		c.curEvent = sim.Event{}
		c.jobsDone++
		if j.done != nil {
			j.done()
		}
		c.dispatch()
	})
}

// RunInterrupt is a convenience for interrupt handlers: charge `d` of
// interrupt-level CPU time, then run fn.
func (c *CPU) RunInterrupt(name string, d sim.Time, fn func()) {
	c.Submit(PrioInterrupt, name, d, fn)
}

// Compute blocks the calling process for d of thread-level CPU time
// (stretched by any interrupts that arrive meanwhile).
func (c *CPU) Compute(p *sim.Proc, name string, d sim.Time) {
	done := sim.NewSignal(p.Engine())
	c.Submit(PrioThread, name, d, func() { done.Broadcast() })
	done.Wait(p)
}

package cab

import (
	"repro/internal/fiber"
	"repro/internal/sim"
)

// Board is one CAB: the hardware platform that the CAB kernel, datalink and
// transport software run on. It is a fiber.Endpoint (the two fibers connect
// it to a HUB port) and exposes the devices of paper Figure 8: CPU, DMA
// controller, memory with protection, checksum unit, and timers.
type Board struct {
	eng  *sim.Engine
	name string
	id   int // network-wide CAB identifier (datalink address)

	CPU    *CPU
	Mem    *Memory
	DMA    *DMA
	Timers *Timers

	// Fiber side.
	out *fiber.Link
	// netReady is the CAB's outgoing ready bit: the HUB input queue at
	// the far end of our output fiber can accept another packet.
	netReady    bool
	netReadySig *sim.Signal
	// itemHandler is the datalink's raw receive hook, called at an
	// item's first-byte arrival (the hardware raises the interrupt on
	// start of packet).
	itemHandler func(*fiber.Item)
	// drainUpstream signals the HUB output register feeding us that the
	// start of packet emerged from our input queue (set by wiring).
	drainUpstream func()

	// powered is false while the board is crashed (fault injection): the
	// fiber interface neither receives nor transmits.
	powered bool

	itemsIn, itemsDropped int64
	crashes               int64

	// Class-segregated send accounting (index = priority class & 3), fed
	// by the transport when overload control is armed.
	classOutBytes [4]int64
	classOutPkts  [4]int64
}

// AccountClassSend records one outbound wire packet against its priority
// class (class-segregated occupancy accounting for overload control).
func (b *Board) AccountClassSend(class uint8, bytes int) {
	b.classOutBytes[class&3] += int64(bytes)
	b.classOutPkts[class&3]++
}

// ClassSentBytes returns the bytes sent so far in the given class.
func (b *Board) ClassSentBytes(class uint8) int64 { return b.classOutBytes[class&3] }

// ClassSentPkts returns the packets sent so far in the given class.
func (b *Board) ClassSentPkts(class uint8) int64 { return b.classOutPkts[class&3] }

// NewBoard creates a CAB board with all devices.
func NewBoard(eng *sim.Engine, id int, name string) *Board {
	b := &Board{
		eng:         eng,
		name:        name,
		id:          id,
		CPU:         NewCPU(eng),
		Mem:         NewMemory(),
		DMA:         NewDMA(eng),
		Timers:      NewTimers(eng),
		netReady:    true,
		netReadySig: sim.NewSignal(eng),
		powered:     true,
	}
	b.DMA.SetName(name + ".dma")
	return b
}

// Engine returns the simulation engine.
func (b *Board) Engine() *sim.Engine { return b.eng }

// ID returns the CAB's network identifier.
func (b *Board) ID() int { return b.id }

// Name returns the board name.
func (b *Board) Name() string { return b.name }

// EndpointName implements fiber.Endpoint.
func (b *Board) EndpointName() string { return b.name }

// AttachNet wires the board's outgoing fiber. drainUpstream is invoked when
// the board's input queue drains a packet, restoring the upstream HUB
// output's ready bit.
func (b *Board) AttachNet(out *fiber.Link, drainUpstream func()) {
	b.out = out
	b.drainUpstream = drainUpstream
}

// SetItemHandler registers the datalink receive hook.
func (b *Board) SetItemHandler(fn func(*fiber.Item)) { b.itemHandler = fn }

// PowerOff halts the board (fault injection): from now until PowerOn, the
// fiber interface drops arriving items and refuses transmissions. The
// software stacks must separately discard their in-flight state (see
// core.CABStack.Crash).
func (b *Board) PowerOff() {
	b.powered = false
	b.crashes++
}

// PowerOn restarts a crashed board's hardware.
func (b *Board) PowerOn() { b.powered = true }

// Powered reports whether the board is running.
func (b *Board) Powered() bool { return b.powered }

// Crashes returns the number of PowerOff events.
func (b *Board) Crashes() int64 { return b.crashes }

// Receive implements fiber.Endpoint: an item arrived on the incoming fiber.
func (b *Board) Receive(it *fiber.Item) {
	if !b.powered {
		b.itemsDropped++
		return
	}
	b.itemsIn++
	if b.itemHandler == nil {
		b.itemsDropped++
		return
	}
	b.itemHandler(it)
}

// Send serializes items onto the outgoing fiber in order. A powered-off
// board transmits nothing.
func (b *Board) Send(items ...*fiber.Item) {
	if !b.powered {
		return
	}
	for _, it := range items {
		b.out.Send(it, b.eng.Now())
	}
}

// OutBusyUntil returns when the outgoing fiber finishes currently queued
// transmissions.
func (b *Board) OutBusyUntil() sim.Time { return b.out.BusyUntil() }

// NetReady reports the outgoing ready bit (the attached HUB input queue can
// accept another packet).
func (b *Board) NetReady() bool { return b.netReady }

// ClearNetReady marks the attached HUB input queue as holding our packet
// (called by the datalink when it launches a packet-switched packet).
func (b *Board) ClearNetReady() { b.netReady = false }

// SetNetReady is called (via topology wiring) when the attached HUB input
// queue drains; it wakes any process blocked in WaitNetReady.
func (b *Board) SetNetReady() {
	b.netReady = true
	b.netReadySig.Broadcast()
}

// WaitNetReady blocks the process until the outgoing ready bit is set.
func (b *Board) WaitNetReady(p *sim.Proc) {
	for !b.netReady {
		b.netReadySig.Wait(p)
	}
}

// DrainedPacket is called by the datalink when the start of packet has been
// moved out of the board's input queue (DMA into a mailbox has begun); it
// propagates the ready signal upstream.
func (b *Board) DrainedPacket() {
	if b.drainUpstream != nil {
		b.drainUpstream()
	}
}

// ItemsReceived returns the count of items that arrived on the input fiber.
func (b *Board) ItemsReceived() int64 { return b.itemsIn }

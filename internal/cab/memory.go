package cab

import (
	"errors"
	"fmt"
)

// Memory layout constants from paper §5.2. The CAB occupies a 24-bit region
// of the node's VME address space; program and data memory are separate
// regions ("the memory architecture is thus optimized for the expected
// usage pattern").
const (
	// PageSize is the protection granularity ("each 1 kilobyte page to be
	// protected separately").
	PageSize = 1024

	// ProgBase/ProgSize: 128 KB PROM + 512 KB RAM of program memory.
	ProgBase = 0x000000
	ProgSize = 640 * 1024

	// DataBase/DataSize: 1 MB of data memory.
	DataBase = 0x100000
	DataSize = 1024 * 1024

	// RegBase covers CAB registers and devices (also page-protected).
	RegBase = 0x300000
	RegSize = 64 * 1024

	// AddrSpace is the 24-bit CAB address space size.
	AddrSpace = 1 << 24

	// NumDomains is the number of protection domains ("currently the CAB
	// supports 32 protection domains").
	NumDomains = 32

	// VMEDomain is the domain assigned to accesses from over the VME bus.
	VMEDomain = NumDomains - 1

	// KernelDomain is the CAB kernel's own domain.
	KernelDomain = 0
)

// Perm is a page-access permission bitmask.
type Perm byte

// Permissions ("any subset of read, write, and execute permissions").
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec

	PermRW  = PermRead | PermWrite
	PermAll = PermRead | PermWrite | PermExec
)

// Addr is a CAB-local address.
type Addr uint32

// ErrNoMemory is returned when an allocation cannot be satisfied.
var ErrNoMemory = errors.New("cab: out of data memory")

// ProtectionError describes a failed access check.
type ProtectionError struct {
	Domain int
	Addr   Addr
	Len    int
	Want   Perm
}

func (e *ProtectionError) Error() string {
	return fmt.Sprintf("cab: protection fault: domain %d access [%#x,+%d) perm %03b",
		e.Domain, e.Addr, e.Len, e.Want)
}

// Memory models the CAB's memory and its protection hardware. The data
// region is backed by real bytes: protocol code reads and writes actual
// message contents through it. A first-fit allocator manages the data
// region for mailboxes and buffers.
type Memory struct {
	data []byte // backing store for the data region

	// perms[domain][page] is the permission set of that page.
	perms [NumDomains][]Perm

	// Allocator free list over the data region: sorted, coalesced.
	free []span

	allocated int
	faults    int64
}

type span struct {
	base Addr
	size int
}

// NewMemory returns a CAB memory with the full data region free and all
// pages granted to the kernel domain only.
func NewMemory() *Memory {
	m := &Memory{
		data: make([]byte, DataSize),
		free: []span{{base: DataBase, size: DataSize}},
	}
	pages := AddrSpace / PageSize
	for d := 0; d < NumDomains; d++ {
		m.perms[d] = make([]Perm, pages)
	}
	// The kernel can touch everything.
	for pg := range m.perms[KernelDomain] {
		m.perms[KernelDomain][pg] = PermAll
	}
	return m
}

// Faults returns the number of failed protection checks.
func (m *Memory) Faults() int64 { return m.faults }

// Allocated returns the number of data-region bytes currently allocated.
func (m *Memory) Allocated() int { return m.allocated }

// SetPerm assigns permissions for [addr, addr+size) pages in a domain.
func (m *Memory) SetPerm(domain int, addr Addr, size int, p Perm) {
	first := int(addr) / PageSize
	last := (int(addr) + size - 1) / PageSize
	for pg := first; pg <= last; pg++ {
		m.perms[domain][pg] = p
	}
}

// Check verifies that a domain may access [addr, addr+n) with permission
// want. Checks are performed by hardware in parallel with the access
// ("no latency is added to memory accesses"), so no CPU time is charged.
func (m *Memory) Check(domain int, addr Addr, n int, want Perm) error {
	if n <= 0 {
		return nil
	}
	first := int(addr) / PageSize
	last := (int(addr) + n - 1) / PageSize
	for pg := first; pg <= last; pg++ {
		if pg >= len(m.perms[domain]) || m.perms[domain][pg]&want != want {
			m.faults++
			return &ProtectionError{Domain: domain, Addr: addr, Len: n, Want: want}
		}
	}
	return nil
}

// inData reports whether [addr, addr+n) lies within the data region.
func inData(addr Addr, n int) bool {
	return addr >= DataBase && int(addr)+n <= DataBase+DataSize
}

// Read copies n bytes at addr out of data memory after a protection check.
func (m *Memory) Read(domain int, addr Addr, n int) ([]byte, error) {
	if !inData(addr, n) {
		return nil, &ProtectionError{Domain: domain, Addr: addr, Len: n, Want: PermRead}
	}
	if err := m.Check(domain, addr, n, PermRead); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.data[addr-DataBase:])
	return out, nil
}

// Write copies b into data memory at addr after a protection check.
func (m *Memory) Write(domain int, addr Addr, b []byte) error {
	if !inData(addr, len(b)) {
		return &ProtectionError{Domain: domain, Addr: addr, Len: len(b), Want: PermWrite}
	}
	if err := m.Check(domain, addr, len(b), PermWrite); err != nil {
		return err
	}
	copy(m.data[addr-DataBase:], b)
	return nil
}

// Slice exposes the raw data-region bytes at [addr, addr+n) without a
// protection check; it is the DMA controller's view (DMA is set up by the
// kernel, which owns the pages it targets).
func (m *Memory) Slice(addr Addr, n int) []byte {
	if !inData(addr, n) {
		panic(fmt.Sprintf("cab: DMA outside data region: [%#x,+%d)", addr, n))
	}
	return m.data[addr-DataBase : int(addr-DataBase)+n]
}

// Alloc reserves size bytes of data memory (first fit, 8-byte aligned).
func (m *Memory) Alloc(size int) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("cab: bad allocation size %d", size)
	}
	size = (size + 7) &^ 7
	for i := range m.free {
		if m.free[i].size >= size {
			base := m.free[i].base
			m.free[i].base += Addr(size)
			m.free[i].size -= size
			if m.free[i].size == 0 {
				m.free = append(m.free[:i], m.free[i+1:]...)
			}
			m.allocated += size
			return base, nil
		}
	}
	return 0, ErrNoMemory
}

// Free returns a block to the allocator, coalescing adjacent spans.
func (m *Memory) Free(addr Addr, size int) {
	size = (size + 7) &^ 7
	m.allocated -= size
	// Insert sorted by base.
	i := 0
	for i < len(m.free) && m.free[i].base < addr {
		i++
	}
	m.free = append(m.free, span{})
	copy(m.free[i+1:], m.free[i:])
	m.free[i] = span{base: addr, size: size}
	// Coalesce with neighbors.
	if i+1 < len(m.free) && m.free[i].base+Addr(m.free[i].size) == m.free[i+1].base {
		m.free[i].size += m.free[i+1].size
		m.free = append(m.free[:i+1], m.free[i+2:]...)
	}
	if i > 0 && m.free[i-1].base+Addr(m.free[i-1].size) == m.free[i].base {
		m.free[i-1].size += m.free[i].size
		m.free = append(m.free[:i], m.free[i+1:]...)
	}
}

// FreeBytes returns the total unallocated data memory.
func (m *Memory) FreeBytes() int {
	n := 0
	for _, s := range m.free {
		n += s.size
	}
	return n
}

// CheckFreeList verifies allocator invariants (sorted, non-overlapping,
// coalesced); used by property tests.
func (m *Memory) CheckFreeList() error {
	for i := 1; i < len(m.free); i++ {
		prev, cur := m.free[i-1], m.free[i]
		if prev.base+Addr(prev.size) > cur.base {
			return fmt.Errorf("cab: free list overlap at %d", i)
		}
		if prev.base+Addr(prev.size) == cur.base {
			return fmt.Errorf("cab: free list not coalesced at %d", i)
		}
	}
	return nil
}

// Package ipsc implements the Intel iPSC communication library on top of
// Nectarine (paper §7: "to run hypercube applications on Nectar, we have
// implemented the Intel iPSC communication library on top of Nectarine.
// Since Nectarine is functionally a superset of the iPSC primitives, this
// implementation is relatively simple").
//
// A Cube runs nprocs logical hypercube processes as CAB-resident Nectarine
// tasks; each process sees the iPSC primitives: csend/crecv (typed,
// blocking), isend/msgwait (asynchronous), mynode/numnodes, gsync (barrier)
// and the global reduction operations.
package ipsc

import (
	"encoding/binary"
	"math"

	"repro/internal/core"
	"repro/internal/nectarine"
	"repro/internal/sim"
)

// Ctx is the view one hypercube process has of the library.
type Ctx struct {
	tc *nectarine.TaskCtx
	me int
	n  int

	nextIsend int
	isends    map[int]*isendState

	// redSeq numbers collective operations so that tags from successive
	// collectives cannot be confused (all processes invoke collectives
	// in the same order, as in any SPMD program).
	redSeq uint32
}

type isendState struct{ done bool }

// taskName returns the task name of hypercube process k.
func taskName(k int) string {
	return "ipsc-" + string(rune('0'+k/10)) + string(rune('0'+k%10))
}

// Run builds a cube of nprocs processes (one per CAB, round-robin over the
// system's CABs), runs body in each, and drives the simulation to
// completion. It returns the final simulated time.
func Run(sys *core.System, nprocs int, body func(c *Ctx)) sim.Time {
	app := nectarine.NewApp(sys)
	for k := 0; k < nprocs; k++ {
		k := k
		app.NewCABTask(taskName(k), k%sys.NumCABs(), func(tc *nectarine.TaskCtx) {
			c := &Ctx{tc: tc, me: k, n: nprocs, isends: make(map[int]*isendState)}
			body(c)
		})
	}
	return app.Run()
}

// Mynode returns this process's hypercube node number.
func (c *Ctx) Mynode() int { return c.me }

// Numnodes returns the number of hypercube processes.
func (c *Ctx) Numnodes() int { return c.n }

// Compute charges processing time to this process.
func (c *Ctx) Compute(d sim.Time) { c.tc.Compute(d) }

// Now returns the simulated time.
func (c *Ctx) Now() sim.Time { return c.tc.Now() }

// Csend sends a typed message to node dst (blocking until accepted).
func (c *Ctx) Csend(msgType uint32, data []byte, dst int) {
	if err := c.tc.Send(taskName(dst), msgType, nectarine.Bytes(data)); err != nil {
		panic(err)
	}
}

// Crecv blocks until a message of the given type arrives and returns its
// body.
func (c *Ctx) Crecv(msgType uint32) []byte {
	return c.tc.RecvTag(msgType).Data
}

// CrecvAny blocks for any message, returning its type and body.
func (c *Ctx) CrecvAny() (uint32, []byte) {
	m := c.tc.Recv()
	return m.Tag, m.Data
}

// Isend starts an asynchronous send and returns a handle for Msgwait.
// (The underlying reliable stream completes quickly; the handle exists for
// source compatibility with iPSC programs.)
func (c *Ctx) Isend(msgType uint32, data []byte, dst int) int {
	c.nextIsend++
	id := c.nextIsend
	st := &isendState{}
	c.isends[id] = st
	// The send is performed synchronously in this task (the iPSC
	// semantics only require the buffer be reusable after msgwait).
	c.Csend(msgType, data, dst)
	st.done = true
	return id
}

// Msgwait blocks until the asynchronous operation completes.
func (c *Ctx) Msgwait(id int) {
	if st, ok := c.isends[id]; ok && st.done {
		delete(c.isends, id)
	}
}

// Collective message tags live in 0xFF000000+ space: a sequence number
// distinguishes successive collectives, and the low byte the round within
// one collective. User tags must stay below 0xFF000000.
const collectiveBase = uint32(0xFF000000)

func collTag(seq uint32, round int) uint32 {
	return collectiveBase | (seq&0xFFFF)<<8 | uint32(round&0xFF)
}

// hypercube dimension-exchange pattern with padding to the next power of
// two: processes beyond n wrap to a tree fallback. For simplicity, gsync
// and the reductions use recursive doubling when n is a power of two and a
// root-gather otherwise.
func pow2(n int) bool { return n&(n-1) == 0 }

// Gsync is the global barrier.
func (c *Ctx) Gsync() {
	c.reduce(0, func(a, b uint64) uint64 { return 0 })
}

// Gisum computes the global sum of v across all processes.
func (c *Ctx) Gisum(v int64) int64 {
	r := c.reduce(uint64(v), func(a, b uint64) uint64 {
		return uint64(int64(a) + int64(b))
	})
	return int64(r)
}

// Gihigh computes the global maximum of v.
func (c *Ctx) Gihigh(v int64) int64 {
	r := c.reduce(uint64(v), func(a, b uint64) uint64 {
		if int64(a) > int64(b) {
			return a
		}
		return b
	})
	return int64(r)
}

// Gdsum computes the global sum of a float64.
func (c *Ctx) Gdsum(v float64) float64 {
	r := c.reduce(math.Float64bits(v), func(a, b uint64) uint64 {
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	})
	return math.Float64frombits(r)
}

// reduce performs an all-reduce of one 64-bit value.
func (c *Ctx) reduce(v uint64, op func(a, b uint64) uint64) uint64 {
	c.redSeq++
	seq := c.redSeq
	buf := make([]byte, 8)
	if c.n == 1 {
		return v
	}
	if pow2(c.n) {
		// Recursive doubling: log2(n) rounds of pairwise exchange.
		round := 0
		for d := 1; d < c.n; d <<= 1 {
			partner := c.me ^ d
			binary.BigEndian.PutUint64(buf, v)
			c.Csend(collTag(seq, round), buf, partner)
			got := c.Crecv(collTag(seq, round))
			v = op(v, binary.BigEndian.Uint64(got))
			round++
		}
		return v
	}
	// General n: gather to node 0, reduce, broadcast.
	if c.me == 0 {
		for i := 1; i < c.n; i++ {
			got := c.Crecv(collTag(seq, 0))
			v = op(v, binary.BigEndian.Uint64(got))
		}
		binary.BigEndian.PutUint64(buf, v)
		for i := 1; i < c.n; i++ {
			c.Csend(collTag(seq, 1), buf, i)
		}
		return v
	}
	binary.BigEndian.PutUint64(buf, v)
	c.Csend(collTag(seq, 0), buf, 0)
	got := c.Crecv(collTag(seq, 1))
	return binary.BigEndian.Uint64(got)
}

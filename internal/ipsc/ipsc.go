// Package ipsc implements the Intel iPSC communication library on top of
// Nectarine (paper §7: "to run hypercube applications on Nectar, we have
// implemented the Intel iPSC communication library on top of Nectarine.
// Since Nectarine is functionally a superset of the iPSC primitives, this
// implementation is relatively simple").
//
// A Cube runs nprocs logical hypercube processes as CAB-resident Nectarine
// tasks; each process sees the iPSC primitives: csend/crecv (typed,
// blocking), isend/msgwait (asynchronous), mynode/numnodes, gsync (barrier)
// and the global reduction operations.
package ipsc

import (
	"math"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/nectarine"
	"repro/internal/sim"
)

// collGroupID is the collective group the cube reserves (internal/coll
// partitions box space by group id; applications building their own
// groups alongside a cube should avoid it).
const collGroupID = 15

// Ctx is the view one hypercube process has of the library.
type Ctx struct {
	tc *nectarine.TaskCtx
	me int
	n  int

	// comm drives the global operations (gsync and the reductions)
	// through the CAB-offloaded collective subsystem; rankToNode maps its
	// canonical ranks back to hypercube node numbers.
	comm       *coll.Comm
	rankToNode []int

	nextIsend int
	isends    map[int]*isendState
}

type isendState struct{ done bool }

// taskName returns the task name of hypercube process k.
func taskName(k int) string {
	return "ipsc-" + string(rune('0'+k/10)) + string(rune('0'+k%10))
}

// Run builds a cube of nprocs processes (one per CAB, round-robin over the
// system's CABs), runs body in each, and drives the simulation to
// completion. It returns the final simulated time.
//
// Any process count is supported — the global operations run on the
// collective subsystem (internal/coll), whose algorithms handle arbitrary
// group sizes and pick the HUB hardware multicast when every process has
// its own CAB.
func Run(sys *core.System, nprocs int, body func(c *Ctx)) sim.Time {
	app := nectarine.NewApp(sys)
	cabs := make([]int, nprocs)
	for k := range cabs {
		cabs[k] = k % sys.NumCABs()
	}
	g := coll.NewGroup(sys, collGroupID, cabs)
	rankToNode := make([]int, nprocs)
	for k := 0; k < nprocs; k++ {
		rankToNode[g.RankOf(k)] = k
	}
	for k := 0; k < nprocs; k++ {
		k := k
		app.NewCABTask(taskName(k), cabs[k], func(tc *nectarine.TaskCtx) {
			c := &Ctx{tc: tc, me: k, n: nprocs,
				comm: g.Member(g.RankOf(k)), rankToNode: rankToNode,
				isends: make(map[int]*isendState)}
			body(c)
		})
	}
	return app.Run()
}

// Mynode returns this process's hypercube node number.
func (c *Ctx) Mynode() int { return c.me }

// Numnodes returns the number of hypercube processes.
func (c *Ctx) Numnodes() int { return c.n }

// Compute charges processing time to this process.
func (c *Ctx) Compute(d sim.Time) { c.tc.Compute(d) }

// Now returns the simulated time.
func (c *Ctx) Now() sim.Time { return c.tc.Now() }

// Csend sends a typed message to node dst (blocking until accepted).
func (c *Ctx) Csend(msgType uint32, data []byte, dst int) {
	if err := c.tc.Send(taskName(dst), msgType, nectarine.Bytes(data)); err != nil {
		panic(err)
	}
}

// Crecv blocks until a message of the given type arrives and returns its
// body.
func (c *Ctx) Crecv(msgType uint32) []byte {
	return c.tc.RecvTag(msgType).Data
}

// CrecvAny blocks for any message, returning its type and body.
func (c *Ctx) CrecvAny() (uint32, []byte) {
	m := c.tc.Recv()
	return m.Tag, m.Data
}

// Isend starts an asynchronous send and returns a handle for Msgwait.
// (The underlying reliable stream completes quickly; the handle exists for
// source compatibility with iPSC programs.)
func (c *Ctx) Isend(msgType uint32, data []byte, dst int) int {
	c.nextIsend++
	id := c.nextIsend
	st := &isendState{}
	c.isends[id] = st
	// The send is performed synchronously in this task (the iPSC
	// semantics only require the buffer be reusable after msgwait).
	c.Csend(msgType, data, dst)
	st.done = true
	return id
}

// Msgwait blocks until the asynchronous operation completes.
func (c *Ctx) Msgwait(id int) {
	if st, ok := c.isends[id]; ok && st.done {
		delete(c.isends, id)
	}
}

// The global operations run on the collective subsystem (internal/coll)
// rather than over csend/crecv: the CAB kernel threads execute the
// algorithms directly — binomial trees, recursive doubling with a
// power-of-two fold (so any nprocs works, not just powers of two), and
// the HUB hardware multicast for barrier release and result broadcast
// when every process has its own CAB. The built-in operators are
// commutative, so the subsystem's canonical ranks need no translation
// back to node numbers (Allgather, which is positional, does translate).

// Gsync is the global barrier.
func (c *Ctx) Gsync() {
	if err := c.comm.Barrier(c.tc.Thread()); err != nil {
		panic(err)
	}
}

// Gisum computes the global sum of v across all processes.
func (c *Ctx) Gisum(v int64) int64 {
	return int64(c.allreduce(coll.SumInt64, uint64(v)))
}

// Gihigh computes the global maximum of v.
func (c *Ctx) Gihigh(v int64) int64 {
	return int64(c.allreduce(coll.MaxInt64, uint64(v)))
}

// Gdsum computes the global sum of a float64.
func (c *Ctx) Gdsum(v float64) float64 {
	return math.Float64frombits(c.allreduce(coll.SumFloat64, math.Float64bits(v)))
}

// Allgather collects data from every process and returns the payloads
// indexed by node number (the iPSC gcol operation).
func (c *Ctx) Allgather(data []byte) [][]byte {
	byRank, err := c.comm.Allgather(c.tc.Thread(), data)
	if err != nil {
		panic(err)
	}
	byNode := make([][]byte, c.n)
	for r, b := range byRank {
		byNode[c.rankToNode[r]] = b
	}
	return byNode
}

// allreduce folds one 64-bit lane across all processes.
func (c *Ctx) allreduce(op coll.Op, v uint64) uint64 {
	out, err := c.comm.Allreduce(c.tc.Thread(), op, coll.Int64Bytes([]int64{int64(v)}))
	if err != nil {
		panic(err)
	}
	return uint64(coll.BytesInt64(out)[0])
}

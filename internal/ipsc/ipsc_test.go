package ipsc_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ipsc"
	"repro/internal/sim"
)

func TestCsendCrecv(t *testing.T) {
	sys := core.New(core.SingleHub(2))
	var got []byte
	ipsc.Run(sys, 2, func(c *ipsc.Ctx) {
		if c.Mynode() == 0 {
			c.Csend(5, []byte("ring"), 1)
		} else {
			got = c.Crecv(5)
		}
	})
	if string(got) != "ring" {
		t.Fatalf("got %q", got)
	}
}

func TestMynodeNumnodes(t *testing.T) {
	sys := core.New(core.SingleHub(4))
	seen := map[int]bool{}
	ipsc.Run(sys, 4, func(c *ipsc.Ctx) {
		if c.Numnodes() != 4 {
			t.Errorf("Numnodes = %d", c.Numnodes())
		}
		seen[c.Mynode()] = true
	})
	if len(seen) != 4 {
		t.Fatalf("nodes seen: %v", seen)
	}
}

func TestRingPass(t *testing.T) {
	sys := core.New(core.SingleHub(4))
	const rounds = 3
	var final []byte
	ipsc.Run(sys, 4, func(c *ipsc.Ctx) {
		me, n := c.Mynode(), c.Numnodes()
		next := (me + 1) % n
		if me == 0 {
			token := []byte{0}
			for r := 0; r < rounds; r++ {
				c.Csend(1, token, next)
				token = c.Crecv(1)
			}
			final = token
		} else {
			for r := 0; r < rounds; r++ {
				token := c.Crecv(1)
				token = append(token, byte(me))
				c.Csend(1, token, next)
			}
		}
	})
	want := []byte{0, 1, 2, 3, 1, 2, 3, 1, 2, 3}
	if !bytes.Equal(final, want) {
		t.Fatalf("token %v, want %v", final, want)
	}
}

func TestGisumPowerOfTwo(t *testing.T) {
	sys := core.New(core.SingleHub(8))
	results := make([]int64, 8)
	ipsc.Run(sys, 8, func(c *ipsc.Ctx) {
		results[c.Mynode()] = c.Gisum(int64(c.Mynode() + 1))
	})
	for i, r := range results {
		if r != 36 { // 1+2+...+8
			t.Fatalf("node %d: Gisum = %d, want 36", i, r)
		}
	}
}

func TestGisumNonPowerOfTwo(t *testing.T) {
	sys := core.New(core.SingleHub(6))
	results := make([]int64, 6)
	ipsc.Run(sys, 6, func(c *ipsc.Ctx) {
		results[c.Mynode()] = c.Gisum(10)
	})
	for i, r := range results {
		if r != 60 {
			t.Fatalf("node %d: Gisum = %d, want 60", i, r)
		}
	}
}

func TestGihighAndGdsum(t *testing.T) {
	sys := core.New(core.SingleHub(4))
	var hi int64
	var sum float64
	ipsc.Run(sys, 4, func(c *ipsc.Ctx) {
		h := c.Gihigh(int64(c.Mynode() * 7))
		s := c.Gdsum(0.5)
		if c.Mynode() == 0 {
			hi, sum = h, s
		}
	})
	if hi != 21 {
		t.Fatalf("Gihigh = %d, want 21", hi)
	}
	if sum != 2.0 {
		t.Fatalf("Gdsum = %v, want 2.0", sum)
	}
}

func TestGsyncBarrier(t *testing.T) {
	sys := core.New(core.SingleHub(4))
	var afterMin, beforeMax sim.Time
	ipsc.Run(sys, 4, func(c *ipsc.Ctx) {
		// Stagger arrival at the barrier.
		c.Compute(sim.Time(c.Mynode()) * sim.Millisecond)
		before := c.Now()
		if before > beforeMax {
			beforeMax = before
		}
		c.Gsync()
		after := c.Now()
		if afterMin == 0 || after < afterMin {
			afterMin = after
		}
	})
	// No process may leave the barrier before the last one arrived.
	if afterMin < beforeMax {
		t.Fatalf("barrier leaked: first exit %v < last arrival %v", afterMin, beforeMax)
	}
}

func TestConsecutiveCollectivesDoNotCross(t *testing.T) {
	sys := core.New(core.SingleHub(4))
	bad := false
	ipsc.Run(sys, 4, func(c *ipsc.Ctx) {
		for i := 0; i < 10; i++ {
			if got := c.Gisum(int64(i)); got != int64(4*i) {
				bad = true
			}
		}
	})
	if bad {
		t.Fatal("successive reductions interfered")
	}
}

func TestIsendMsgwait(t *testing.T) {
	sys := core.New(core.SingleHub(2))
	var got []byte
	ipsc.Run(sys, 2, func(c *ipsc.Ctx) {
		if c.Mynode() == 0 {
			h := c.Isend(9, []byte("async"), 1)
			c.Msgwait(h)
		} else {
			got = c.Crecv(9)
		}
	})
	if string(got) != "async" {
		t.Fatalf("got %q", got)
	}
}

func TestMoreProcsThanCABs(t *testing.T) {
	// 8 processes on 4 CABs: round-robin placement, two tasks per CAB.
	sys := core.New(core.SingleHub(4))
	results := make([]int64, 8)
	ipsc.Run(sys, 8, func(c *ipsc.Ctx) {
		results[c.Mynode()] = c.Gisum(1)
	})
	for i, r := range results {
		if r != 8 {
			t.Fatalf("node %d: %d, want 8", i, r)
		}
	}
}

// Every collective must work at arbitrary process counts — the old
// implementation special-cased powers of two; the collective subsystem's
// power-of-two fold and tree algorithms lift that restriction.
func TestCollectivesArbitraryProcessCounts(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			sys := core.New(core.SingleHub(8))
			sums := make([]int64, n)
			highs := make([]int64, n)
			dsums := make([]float64, n)
			ipsc.Run(sys, n, func(c *ipsc.Ctx) {
				c.Gsync()
				sums[c.Mynode()] = c.Gisum(int64(c.Mynode() + 1))
				highs[c.Mynode()] = c.Gihigh(int64(c.Mynode() * 3))
				dsums[c.Mynode()] = c.Gdsum(0.25)
				c.Gsync()
			})
			wantSum := int64(n*(n+1)) / 2
			for i := 0; i < n; i++ {
				if sums[i] != wantSum {
					t.Errorf("node %d: Gisum = %d, want %d", i, sums[i], wantSum)
				}
				if highs[i] != int64((n-1)*3) {
					t.Errorf("node %d: Gihigh = %d, want %d", i, highs[i], (n-1)*3)
				}
				if dsums[i] != 0.25*float64(n) {
					t.Errorf("node %d: Gdsum = %g, want %g", i, dsums[i], 0.25*float64(n))
				}
			}
		})
	}
}

// TestAllgather checks the node-number indexing of the gcol-style
// operation (the collective subsystem's ranks are CAB-ordered, so the
// library must translate back to hypercube node numbers).
func TestAllgather(t *testing.T) {
	const n = 5
	sys := core.New(core.SingleHub(3)) // shared CABs: ranks != nodes
	ipsc.Run(sys, n, func(c *ipsc.Ctx) {
		all := c.Allgather([]byte(fmt.Sprintf("node-%d", c.Mynode())))
		if len(all) != n {
			t.Errorf("node %d: got %d entries", c.Mynode(), len(all))
			return
		}
		for k := 0; k < n; k++ {
			if want := fmt.Sprintf("node-%d", k); string(all[k]) != want {
				t.Errorf("node %d: all[%d] = %q, want %q", c.Mynode(), k, all[k], want)
			}
		}
	})
}

package sim

import "fmt"

// Proc is a simulation process: sequential code that runs in virtual time.
//
// A Proc is backed by a goroutine, but the engine guarantees that exactly one
// process goroutine executes at any moment, and only while the engine itself
// is paused waiting for it. The result is fully deterministic cooperative
// scheduling: a process runs until it blocks (Sleep, Wait, Queue ops, ...),
// at which point control returns to the event loop.
//
// All Proc methods must be called from within the process's own body.
type Proc struct {
	eng  *Engine
	name string

	wake chan struct{} // engine -> proc: run a slice
	park chan struct{} // proc -> engine: slice done (blocked or finished)

	done bool

	// daemon processes are expected to block forever (service loops);
	// they are excluded from the engine's deadlock accounting.
	daemon bool
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name given at Go time.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Go starts a new process at the current simulated time. The body begins
// executing when the engine reaches the start event.
func (e *Engine) Go(name string, body func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, body)
}

// GoDaemon starts a process excluded from deadlock accounting: a service
// loop that legitimately blocks forever (e.g. a protocol server thread).
func (e *Engine) GoDaemon(name string, body func(p *Proc)) *Proc {
	p := e.GoAt(e.now, name, body)
	p.daemon = true
	e.procs--
	return p
}

// GoAt starts a new process at absolute time t.
func (e *Engine) GoAt(t Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:  e,
		name: name,
		wake: make(chan struct{}),
		park: make(chan struct{}),
	}
	e.procs++
	if e.live == nil {
		e.live = make(map[*Proc]bool)
	}
	e.live[p] = true
	go func() {
		<-p.wake // wait for the start event
		body(p)
		p.done = true
		delete(e.live, p)
		if !p.daemon {
			e.procs--
		}
		p.park <- struct{}{}
	}()
	e.At(t, func() { e.runSlice(p) })
	return p
}

// runSlice hands control to the process goroutine and waits for it to block
// again or finish. Must only be called from event context.
func (e *Engine) runSlice(p *Proc) {
	if p.done {
		return
	}
	p.wake <- struct{}{}
	<-p.park
}

// block parks the calling process goroutine and returns control to the
// engine; it returns when the engine next resumes the process.
func (p *Proc) block() {
	p.park <- struct{}{}
	<-p.wake
}

// resumeAt schedules the process to resume at absolute time t and returns
// the resume event (so it can be canceled, e.g. for timeouts).
func (p *Proc) resumeAt(t Time) Event {
	return p.eng.At(t, func() { p.eng.runSlice(p) })
}

// Sleep blocks the process for d nanoseconds of simulated time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	if d == 0 {
		// Still yield through the event queue so same-time events
		// scheduled earlier run first.
	}
	p.resumeAt(p.eng.now + d)
	p.block()
}

// Yield reschedules the process at the current time, letting other pending
// same-time events run first.
func (p *Proc) Yield() { p.Sleep(0) }

// waiter is a parked process plus an optional timeout event.
type waiter struct {
	p       *Proc
	timeout Event
	fired   bool // set when the signal (not the timeout) woke the waiter
}

// Signal is a broadcast/wakeup primitive for processes (a condition
// variable in virtual time). The zero value is invalid; use NewSignal.
type Signal struct {
	eng     *Engine
	waiters []*waiter
}

// NewSignal returns a Signal bound to the engine.
func NewSignal(e *Engine) *Signal {
	return &Signal{eng: e}
}

// Waiters returns the number of processes currently blocked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Wait blocks the process until Signal or Broadcast wakes it.
func (s *Signal) Wait(p *Proc) {
	w := &waiter{p: p}
	s.waiters = append(s.waiters, w)
	p.block()
}

// WaitTimeout blocks until woken or until d elapses. It reports true if the
// process was woken by the signal and false on timeout.
func (s *Signal) WaitTimeout(p *Proc, d Time) bool {
	w := &waiter{p: p}
	w.timeout = p.eng.At(p.eng.now+d, func() {
		// Timeout fired before the signal: remove from waiters, resume.
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		p.eng.runSlice(p)
	})
	s.waiters = append(s.waiters, w)
	p.block()
	return w.fired
}

// wakeOne removes and schedules the resume of a single waiter.
func (s *Signal) wakeOne() {
	w := s.waiters[0]
	s.waiters = s.waiters[1:]
	w.fired = true
	s.eng.Cancel(w.timeout) // no-op for the zero Event (no timeout armed)
	w.p.resumeAt(s.eng.now)
}

// Signal wakes one waiting process (FIFO), if any. The wakeup is delivered
// through the event queue, so the caller continues first.
func (s *Signal) Signal() {
	if len(s.waiters) > 0 {
		s.wakeOne()
	}
}

// Broadcast wakes all waiting processes in FIFO order.
func (s *Signal) Broadcast() {
	for len(s.waiters) > 0 {
		s.wakeOne()
	}
}

// Resource is a FIFO mutual-exclusion resource for processes (e.g. a shared
// bus). The zero value is invalid; use NewResource.
type Resource struct {
	eng  *Engine
	held bool
	free *Signal
}

// NewResource returns an unheld resource.
func NewResource(e *Engine) *Resource {
	return &Resource{eng: e, free: NewSignal(e)}
}

// Held reports whether the resource is currently acquired.
func (r *Resource) Held() bool { return r.held }

// Acquire blocks until the resource is free, then takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.held {
		r.free.Wait(p)
	}
	r.held = true
}

// Release frees the resource and wakes one waiter. Releasing an unheld
// resource panics: it is always a model bug.
func (r *Resource) Release() {
	if !r.held {
		panic("sim: release of unheld resource")
	}
	r.held = false
	r.free.Signal()
}

// Use acquires the resource, holds it for d, and releases it.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

package sim

// Queue is a bounded FIFO channel for processes in virtual time. Put blocks
// while the queue is full (capacity > 0) and Get blocks while it is empty.
// A capacity of 0 means unbounded.
type Queue[T any] struct {
	eng      *Engine
	items    []T
	capacity int
	notEmpty *Signal
	notFull  *Signal
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue[T any](e *Engine, capacity int) *Queue[T] {
	return &Queue[T]{
		eng:      e,
		capacity: capacity,
		notEmpty: NewSignal(e),
		notFull:  NewSignal(e),
	}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap returns the capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Full reports whether the queue is at capacity.
func (q *Queue[T]) Full() bool {
	return q.capacity > 0 && len(q.items) >= q.capacity
}

// Put appends v, blocking while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.Full() {
		q.notFull.Wait(p)
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
}

// TryPut appends v if there is room, reporting whether it was stored. It
// never blocks and may be called from event context.
func (q *Queue[T]) TryPut(v T) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// Get removes and returns the head item, blocking while the queue is empty.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.notEmpty.Wait(p)
	}
	return q.pop()
}

// GetTimeout is like Get but gives up after d; ok is false on timeout.
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (v T, ok bool) {
	deadline := q.eng.now + d
	for len(q.items) == 0 {
		remain := deadline - q.eng.now
		if remain <= 0 || !q.notEmpty.WaitTimeout(p, remain) {
			return v, false
		}
	}
	return q.pop(), true
}

// TryGet removes and returns the head item without blocking; ok reports
// whether an item was available. It may be called from event context.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.pop(), true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

func (q *Queue[T]) pop() T {
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.notFull.Signal()
	return v
}

package sim

import (
	"math/rand"
	"testing"
)

// The engine recycles event slots through a free list; these tests pin the
// safety contract of the Event handle across that reuse.

func TestStaleHandleCancelIsSafe(t *testing.T) {
	e := NewEngine()
	fired1 := false
	ev1 := e.At(10, func() { fired1 = true })
	e.Run()
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	if !ev1.Canceled() {
		t.Fatal("fired event's handle should report Canceled")
	}
	if ev1.Time() != 0 {
		t.Fatalf("fired event's Time = %v, want 0", ev1.Time())
	}

	// The slot behind ev1 is now on the free list; schedule enough events
	// to guarantee it is reused, then cancel through the stale handle.
	fired2 := 0
	for i := 0; i < 4*slotChunk; i++ {
		e.At(20, func() { fired2++ })
	}
	e.Cancel(ev1) // must NOT cancel whatever reused ev1's slot
	e.Run()
	if fired2 != 4*slotChunk {
		t.Fatalf("stale-handle Cancel killed a live event: fired %d of %d", fired2, 4*slotChunk)
	}
}

func TestZeroEventHandle(t *testing.T) {
	e := NewEngine()
	var ev Event
	if !ev.Canceled() {
		t.Fatal("zero Event should report Canceled")
	}
	if ev.Time() != 0 {
		t.Fatal("zero Event should have Time 0")
	}
	e.Cancel(ev) // no-op, must not panic
}

func TestSlotReuseZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	// Warm the free list past the chunk boundary.
	for i := 0; i < 2*slotChunk; i++ {
		e.After(1, func() {})
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.After(1, func() {})
		e.RunUntil(e.Now() + 1)
	})
	if avg > 0.1 {
		t.Fatalf("steady-state schedule+fire allocates %.2f/event, want ~0", avg)
	}
}

func TestCancelAccountingAndCompaction(t *testing.T) {
	e := NewEngine()
	const n = 1000
	handles := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		handles = append(handles, e.At(Time(i+1), func() {}))
	}
	// Cancel a big majority; compaction must keep Pending exact and the
	// survivors must still fire in order.
	canceled := 0
	for i, ev := range handles {
		if i%5 != 0 {
			e.Cancel(ev)
			canceled++
		}
	}
	if got, want := e.Pending(), n-canceled; got != want {
		t.Fatalf("Pending after cancels = %d, want %d", got, want)
	}
	before := e.Executed()
	e.Run()
	if fired := e.Executed() - before; fired != uint64(n-canceled) {
		t.Fatalf("fired %d events, want %d", fired, n-canceled)
	}
}

func TestCancelPendingTwice(t *testing.T) {
	e := NewEngine()
	ev := e.At(5, func() { t.Error("canceled event fired") })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel must not corrupt the dead count
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
	e.At(7, func() {})
	e.Run()
	if e.Executed() != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed())
	}
}

func TestHeapRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(50)) // heavy ties to exercise FIFO break
			i := i
			e.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run()
		if len(fired) != n {
			t.Fatalf("trial %d: fired %d of %d", trial, len(fired), n)
		}
		for i := 1; i < n; i++ {
			a, b := fired[i-1], fired[i]
			if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
				t.Fatalf("trial %d: out of order at %d: %v before %v", trial, i, a, b)
			}
		}
	}
}

// Nested scheduling from within callbacks must preserve (time, seq) order
// through pool reuse.
func TestHeapNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() {
		got = append(got, 1)
		e.At(10, func() { got = append(got, 3) }) // same time, later seq
		e.After(5, func() { got = append(got, 4) })
	})
	e.At(10, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

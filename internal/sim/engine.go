// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate for the whole Nectar reproduction: hardware
// components (HUB ports, DMA engines, fiber links) schedule plain events,
// while software components (CAB kernel threads, node processes) run as
// cooperative processes (Proc) whose sequential code blocks on virtual time
// and on synchronization primitives (Signal, Queue, Resource).
//
// Determinism: events fire in (time, sequence) order, exactly one process
// goroutine runs at a time, and all randomness is drawn from seeded
// math/rand sources owned by individual components. Two runs with the same
// seeds produce identical event orders and identical results.
//
// # Fast path
//
// The event queue is a monomorphic 4-ary min-heap over pooled event slots:
// no interface boxing, no container/heap indirection, and near-zero
// allocations per event in steady state (slots are recycled through a free
// list; new slots are allocated in chunks). Cancellation is lazy — Cancel
// marks the slot dead and the slot is skipped and recycled when it
// surfaces — with an O(n) compaction pass when dead slots dominate the
// heap, so timer-heavy workloads (retransmission timers that almost always
// cancel) stay compact.
package sim

import "fmt"

// Time is simulated time in nanoseconds.
type Time int64

// Convenient durations in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String formats a Time with an adaptive unit, e.g. "700ns", "26.40us".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/1000)
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(t)/1e9)
	}
}

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// slot is the pooled storage behind a scheduled event. Slots are owned by
// the engine: after the callback fires (or a canceled slot surfaces at the
// top of the heap) the slot returns to the free list and is reused by a
// later At/After. seq is unique per schedule and doubles as the FIFO
// tie-break and the Event handle validity token.
type slot struct {
	at  Time
	seq uint64
	fn  func()
}

// Event is a cancellation handle for a scheduled callback, returned by
// At/After. The zero Event is valid and refers to nothing (Cancel is a
// no-op, Canceled reports true). Handles stay safe across slot reuse: a
// handle whose event already fired or was canceled never affects the event
// currently occupying the recycled slot.
type Event struct {
	s   *slot
	seq uint64
}

// live reports whether the handle still refers to its pending event.
func (ev Event) live() bool { return ev.s != nil && ev.s.seq == ev.seq && ev.s.fn != nil }

// Time returns the simulated time at which the event is scheduled to fire,
// or 0 if it already fired or was canceled.
func (ev Event) Time() Time {
	if !ev.live() {
		return 0
	}
	return ev.s.at
}

// Canceled reports whether the event is no longer pending (it was canceled
// or has already fired).
func (ev Event) Canceled() bool { return !ev.live() }

// slotChunk is how many event slots are allocated at once when the free
// list runs dry, amortizing slot allocation to near zero per event.
const slotChunk = 64

// Engine is a discrete-event simulator.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now Time
	seq uint64

	// events is a 4-ary min-heap ordered by (at, seq); free is the slot
	// free list; dead counts canceled slots still parked in the heap.
	events []*slot
	free   []*slot
	dead   int

	// procs counts live processes, used by Run to detect termination
	// versus deadlock. live tracks them by name for diagnostics.
	procs int
	live  map[*Proc]bool

	// executed counts events fired, for diagnostics and tests.
	executed uint64
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of scheduled (uncanceled) events.
func (e *Engine) Pending() int { return len(e.events) - e.dead }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	var s *slot
	if n := len(e.free); n > 0 {
		s = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		chunk := make([]slot, slotChunk)
		for i := 1; i < slotChunk; i++ {
			e.free = append(e.free, &chunk[i])
		}
		s = &chunk[0]
	}
	e.seq++
	s.at, s.seq, s.fn = t, e.seq, fn
	e.push(s)
	return Event{s: s, seq: s.seq}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an already-fired
// or already-canceled event (or the zero Event) is a no-op: handles remain
// safe even after the engine has recycled the event's storage.
func (e *Engine) Cancel(ev Event) {
	if !ev.live() {
		return
	}
	ev.s.fn = nil
	e.dead++
	// Timer-heavy workloads cancel almost every event they schedule
	// (retransmission timers on a healthy network). When dead slots
	// dominate a non-trivial heap, compact it in one O(n) pass instead of
	// letting them surface one by one.
	if e.dead > 64 && e.dead > len(e.events)/2 {
		e.compact()
	}
}

// recycle returns a spent slot to the free list.
func (e *Engine) recycle(s *slot) {
	s.fn = nil
	e.free = append(e.free, s)
}

// less orders slots by (time, schedule sequence): the FIFO tie-break makes
// same-time events fire in scheduling order.
func less(a, b *slot) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push adds a slot to the 4-ary heap (sift up).
func (e *Engine) push(s *slot) {
	h := e.events
	i := len(h)
	h = append(h, s)
	for i > 0 {
		p := (i - 1) >> 2
		if !less(s, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = s
	e.events = h
}

// pop removes and returns the minimum slot (sift down over 4 children).
func (e *Engine) pop() *slot {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	e.events = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1 // first child
			if c >= n {
				break
			}
			// Find the least of up to four children.
			m := c
			if c+1 < n && less(h[c+1], h[m]) {
				m = c + 1
			}
			if c+2 < n && less(h[c+2], h[m]) {
				m = c + 2
			}
			if c+3 < n && less(h[c+3], h[m]) {
				m = c + 3
			}
			if !less(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// compact removes canceled slots from the heap in one pass and restores the
// heap invariant (Floyd heapify, bottom-up over 4-ary nodes).
func (e *Engine) compact() {
	h := e.events[:0]
	for _, s := range e.events {
		if s.fn != nil {
			h = append(h, s)
		} else {
			e.recycle(s)
		}
	}
	// Clear the tail so recycled slots are not retained by the backing
	// array.
	for i := len(h); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = h
	e.dead = 0
	n := len(h)
	for i := (n - 2) >> 2; i >= 0; i-- {
		s := h[i]
		j := i
		for {
			c := j<<2 + 1
			if c >= n {
				break
			}
			m := c
			if c+1 < n && less(h[c+1], h[m]) {
				m = c + 1
			}
			if c+2 < n && less(h[c+2], h[m]) {
				m = c + 2
			}
			if c+3 < n && less(h[c+3], h[m]) {
				m = c + 3
			}
			if !less(h[m], s) {
				break
			}
			h[j] = h[m]
			j = m
		}
		h[j] = s
	}
}

// step fires the next event. It reports false when no events remain.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		s := e.pop()
		if s.fn == nil { // canceled: recycle lazily
			e.dead--
			e.recycle(s)
			continue
		}
		if s.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = s.at
		fn := s.fn
		e.recycle(s)
		e.executed++
		fn()
		return true
	}
	return false
}

// Run processes events until none remain. It returns the final time.
// If live processes remain blocked with no pending events, the simulation is
// deadlocked and Run panics with a diagnostic (a silent hang would otherwise
// be indistinguishable from completion).
func (e *Engine) Run() Time {
	for e.step() {
	}
	if e.procs > 0 {
		names := ""
		for p := range e.live {
			if !p.daemon && !p.done {
				names += " " + p.name
			}
		}
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events:%s", e.procs, names))
	}
	return e.now
}

// RunUntil processes events with firing time <= t, then sets the clock to t.
// Processes may still be blocked; RunUntil does not treat that as deadlock.
func (e *Engine) RunUntil(t Time) Time {
	for len(e.events) > 0 {
		// Peek at the earliest event.
		next := e.events[0]
		if next.fn == nil {
			e.dead--
			e.recycle(e.pop())
			continue
		}
		if next.at > t {
			break
		}
		e.step()
	}
	if t > e.now {
		e.now = t
	}
	return e.now
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate for the whole Nectar reproduction: hardware
// components (HUB ports, DMA engines, fiber links) schedule plain events,
// while software components (CAB kernel threads, node processes) run as
// cooperative processes (Proc) whose sequential code blocks on virtual time
// and on synchronization primitives (Signal, Queue, Resource).
//
// Determinism: events fire in (time, sequence) order, exactly one process
// goroutine runs at a time, and all randomness is drawn from seeded
// math/rand sources owned by individual components. Two runs with the same
// seeds produce identical event orders and identical results.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in nanoseconds.
type Time int64

// Convenient durations in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String formats a Time with an adaptive unit, e.g. "700ns", "26.40us".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/1000)
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(t)/1e9)
	}
}

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Event is a scheduled callback. It is returned by At/After so callers can
// Cancel it (used for retransmission timers and preemption).
type Event struct {
	at  Time
	seq uint64
	fn  func()
}

// Time returns the simulated time at which the event is scheduled to fire.
func (ev *Event) Time() Time { return ev.at }

// Canceled reports whether the event was canceled before firing.
func (ev *Event) Canceled() bool { return ev.fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator.
//
// The zero value is not usable; create engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	// procs counts live processes, used by Run to detect termination
	// versus deadlock. live tracks them by name for diagnostics.
	procs int
	live  map[*Proc]bool

	// executed counts events fired, for diagnostics and tests.
	executed uint64
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of scheduled (uncanceled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if ev.fn != nil {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.fn = nil
	}
}

// step fires the next event. It reports false when no events remain.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil {
			continue // canceled
		}
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.executed++
		fn()
		return true
	}
	return false
}

// Run processes events until none remain. It returns the final time.
// If live processes remain blocked with no pending events, the simulation is
// deadlocked and Run panics with a diagnostic (a silent hang would otherwise
// be indistinguishable from completion).
func (e *Engine) Run() Time {
	for e.step() {
	}
	if e.procs > 0 {
		names := ""
		for p := range e.live {
			if !p.daemon && !p.done {
				names += " " + p.name
			}
		}
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events:%s", e.procs, names))
	}
	return e.now
}

// RunUntil processes events with firing time <= t, then sets the clock to t.
// Processes may still be blocked; RunUntil does not treat that as deadlock.
func (e *Engine) RunUntil(t Time) Time {
	for len(e.events) > 0 {
		// Peek at the earliest event.
		next := e.events[0]
		if next.fn == nil {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.step()
	}
	if t > e.now {
		e.now = t
	}
	return e.now
}

package sim

import "testing"

// Wall-clock micro-benchmarks of the engine itself (the substrate's own
// speed, as opposed to the simulated-time results in the root bench file).
// The schedule-heavy churn benchmarks have baseline twins in
// baseline_bench_test.go; cmd/nectar-fleet runs both loops head-to-head and
// records the speedup in BENCH_fleet.json.

func BenchmarkEventScheduleAndFire(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.RunUntil(e.Now() + 1)
	}
}

func BenchmarkEventHeapChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Keep ~64 events in flight.
		for j := 0; j < 64; j++ {
			e.After(Time(j%7+1), func() {})
		}
		e.RunUntil(e.Now() + 8)
	}
	e.Run()
}

// BenchmarkEventChurnCancelHeavy models a retransmission-timer workload:
// most scheduled events are canceled before they fire (a healthy network
// acks almost everything), so the heap must recycle dead slots cheaply.
func BenchmarkEventChurnCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	var timers [64]Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			timers[j] = e.After(Time(j%13+2), func() {})
		}
		for j := 0; j < 64; j++ {
			if j%8 != 0 { // 7 of 8 timers canceled before expiry
				e.Cancel(timers[j])
			}
		}
		e.RunUntil(e.Now() + 4)
	}
	e.Run()
}

func BenchmarkProcSleepWake(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	stop := false
	e.GoDaemon("sleeper", func(p *Proc) {
		for !stop {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 1)
	}
	stop = true
	e.RunUntil(e.Now() + 2)
}

func BenchmarkSignalHandoff(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	ping := NewSignal(e)
	pong := NewSignal(e)
	stop := false
	e.GoDaemon("a", func(p *Proc) {
		for !stop {
			pong.Signal()
			ping.Wait(p)
		}
	})
	e.GoDaemon("b", func(p *Proc) {
		for !stop {
			pong.Wait(p)
			ping.Signal()
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 1)
	}
	stop = true
	ping.Broadcast()
	pong.Broadcast()
	e.RunUntil(e.Now() + 2)
}

package sim

import "testing"

// Wall-clock micro-benchmarks of the engine itself (the substrate's own
// speed, as opposed to the simulated-time results in the root bench file).

func BenchmarkEventScheduleAndFire(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.RunUntil(e.Now() + 1)
	}
}

func BenchmarkEventHeapChurn(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Keep ~64 events in flight.
		for j := 0; j < 64; j++ {
			e.After(Time(j%7+1), func() {})
		}
		e.RunUntil(e.Now() + 8)
	}
	e.Run()
}

func BenchmarkProcSleepWake(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	stop := false
	e.GoDaemon("sleeper", func(p *Proc) {
		for !stop {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 1)
	}
	stop = true
	e.RunUntil(e.Now() + 2)
}

func BenchmarkSignalHandoff(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	ping := NewSignal(e)
	pong := NewSignal(e)
	stop := false
	e.GoDaemon("a", func(p *Proc) {
		for !stop {
			pong.Signal()
			ping.Wait(p)
		}
	})
	e.GoDaemon("b", func(p *Proc) {
		for !stop {
			pong.Wait(p)
			ping.Signal()
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunUntil(e.Now() + 1)
	}
	stop = true
	ping.Broadcast()
	pong.Broadcast()
	e.RunUntil(e.Now() + 2)
}

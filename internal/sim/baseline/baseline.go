// Package baseline preserves the pre-optimization event loop of
// internal/sim: an interface{}-boxed container/heap binary heap with one
// Event allocation per schedule. It exists only as a measuring stick — the
// engine equivalence tests check that the 4-ary pooled heap fires events in
// exactly the same order, and cmd/nectar-fleet benchmarks both loops to
// record the speedup in BENCH_fleet.json. Do not use it in models.
package baseline

import (
	"container/heap"
	"fmt"

	"repro/internal/sim"
)

// Event is a scheduled callback in the baseline engine.
type Event struct {
	at  sim.Time
	seq uint64
	fn  func()
}

// Time returns the scheduled fire time.
func (ev *Event) Time() sim.Time { return ev.at }

// Canceled reports whether the event was canceled (or already fired).
func (ev *Event) Canceled() bool { return ev.fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is the baseline discrete-event loop (events only — no process
// support; the models never run on it).
type Engine struct {
	now      sim.Time
	seq      uint64
	events   eventHeap
	executed uint64
}

// NewEngine returns an empty baseline engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() sim.Time { return e.now }

// Executed returns the number of events fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn at absolute time t.
func (e *Engine) At(t sim.Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("baseline: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("baseline: nil event function")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn d nanoseconds from now.
func (e *Engine) After(d sim.Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("baseline: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.fn = nil
	}
}

// step fires the next event, reporting false when none remain.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil {
			continue // canceled
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.executed++
		fn()
		return true
	}
	return false
}

// Run processes events until none remain and returns the final time.
func (e *Engine) Run() sim.Time {
	for e.step() {
	}
	return e.now
}

// RunUntil processes events with firing time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t sim.Time) sim.Time {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.fn == nil {
			heap.Pop(&e.events)
			continue
		}
		if next.at > t {
			break
		}
		e.step()
	}
	if t > e.now {
		e.now = t
	}
	return e.now
}

package sim

import "testing"

// Capacity edge cases for Queue, with a focus on TryPut against a full
// bounded queue while the notFull/notEmpty signals are stormed.

func TestTryPutFullQueueUnderSignalStorm(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, 2)
	if !q.TryPut(1) || !q.TryPut(2) {
		t.Fatal("fills failed")
	}

	rejected, accepted := 0, 0
	// Stormers hammer TryPut every tick while the queue is full; every
	// attempt before the consumer drains must be rejected, and rejected
	// TryPuts must not wake or disturb blocked writers' bookkeeping.
	for s := 0; s < 4; s++ {
		e.Go("storm", func(p *Proc) {
			for i := 0; i < 50; i++ {
				if q.TryPut(100) {
					accepted++
				} else {
					rejected++
				}
				p.Sleep(1)
			}
		})
	}
	drained := 0
	e.Go("consumer", func(p *Proc) {
		p.Sleep(25) // let the storm rage against a full queue first
		for q.Len() > 0 || drained < 2 {
			if _, ok := q.TryGet(); ok {
				drained++
			}
			p.Sleep(1)
		}
	})
	e.Run()
	if rejected == 0 {
		t.Fatal("no TryPut was rejected while the queue was full")
	}
	if q.Len() > q.Cap() {
		t.Fatalf("queue over capacity: len=%d cap=%d", q.Len(), q.Cap())
	}
	if accepted == 0 {
		t.Fatal("no TryPut succeeded after the consumer drained")
	}
}

// A blocked Put must win the freed slot even when TryPut callers race it:
// the notFull signal wakes the blocked producer through the event queue,
// and the producer re-checks Full, so an event-context TryPut that lands
// first simply refills the queue and the producer keeps waiting.
func TestBlockedPutVersusTryPut(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, 1)
	if !q.TryPut(1) {
		t.Fatal("fill failed")
	}
	var putDone Time
	e.Go("producer", func(p *Proc) {
		q.Put(p, 2) // blocks: queue full
		putDone = p.Now()
	})
	// Event-context TryPut fires the instant the consumer frees the slot,
	// before the woken producer's resume event runs.
	e.At(10, func() {
		q.TryGet()        // frees the slot, signals notFull
		if !q.TryPut(3) { // steals the slot back at the same instant
			t.Error("event-context TryPut failed on freed slot")
		}
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(20)
		for q.Len() > 0 {
			q.TryGet()
			p.Sleep(1)
		}
	})
	e.Run()
	if putDone <= 10 {
		t.Fatalf("blocked Put completed at %v despite the slot being stolen", putDone)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: len=%d", q.Len())
	}
}

func TestQueueFullAndCapReporting(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, 3)
	for i := 0; i < 3; i++ {
		if q.Full() {
			t.Fatalf("Full before capacity at %d", i)
		}
		q.TryPut(i)
	}
	if !q.Full() {
		t.Fatal("not Full at capacity")
	}
	if q.TryPut(99) {
		t.Fatal("TryPut succeeded on full queue")
	}
	q.TryGet()
	if q.Full() {
		t.Fatal("still Full after TryGet")
	}
	// Unbounded queue never reports Full.
	u := NewQueue[int](e, 0)
	for i := 0; i < 1000; i++ {
		if !u.TryPut(i) || u.Full() {
			t.Fatal("unbounded queue rejected TryPut or reported Full")
		}
	}
}

package sim_test

// Baseline twins of the engine micro-benchmarks, running the preserved
// pre-PR event loop. Compare:
//
//	go test -bench='EventHeapChurn|BaselineHeapChurn' ./internal/sim/
//
// cmd/nectar-fleet runs the same head-to-head programmatically and records
// the events/sec ratio in BENCH_fleet.json.

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/baseline"
)

func BenchmarkBaselineScheduleAndFire(b *testing.B) {
	b.ReportAllocs()
	e := baseline.NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.RunUntil(e.Now() + 1)
	}
}

func BenchmarkBaselineHeapChurn(b *testing.B) {
	b.ReportAllocs()
	e := baseline.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.After(sim.Time(j%7+1), func() {})
		}
		e.RunUntil(e.Now() + 8)
	}
	e.Run()
}

func BenchmarkBaselineChurnCancelHeavy(b *testing.B) {
	b.ReportAllocs()
	e := baseline.NewEngine()
	var timers [64]*baseline.Event
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			timers[j] = e.After(sim.Time(j%13+2), func() {})
		}
		for j := 0; j < 64; j++ {
			if j%8 != 0 {
				e.Cancel(timers[j])
			}
		}
		e.RunUntil(e.Now() + 4)
	}
	e.Run()
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events out of order: %v", got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Cancel after firing is a no-op.
	ev2 := e.At(20, func() {})
	e.Run()
	e.Cancel(ev2)
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, ti := range []Time{10, 20, 30, 40} {
		ti := ti
		e.At(ti, func() { fired = append(fired, ti) })
	}
	e.RunUntil(25)
	if len(fired) != 2 || e.Now() != 25 {
		t.Fatalf("RunUntil(25): fired=%v now=%v", fired, e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 || e.Now() != 100 {
		t.Fatalf("RunUntil(100): fired=%v now=%v", fired, e.Now())
	}
}

func TestExecutedAndPending(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	ev := e.At(2, func() {})
	e.Cancel(ev)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Executed() != 1 {
		t.Fatalf("Executed = %d, want 1", e.Executed())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{700, "700ns"},
		{26400, "26.40us"},
		{3_500_000, "3.500ms"},
		{2_000_000_000, "2.000s"},
		{60_000_000_000, "60.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var marks []Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(10)
		marks = append(marks, p.Now())
		p.Sleep(15)
		marks = append(marks, p.Now())
	})
	e.Run()
	if len(marks) != 2 || marks[0] != 10 || marks[1] != 25 {
		t.Fatalf("marks = %v, want [10 25]", marks)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Go("a", func(p *Proc) {
		got = append(got, "a0")
		p.Sleep(10)
		got = append(got, "a10")
		p.Sleep(20)
		got = append(got, "a30")
	})
	e.Go("b", func(p *Proc) {
		got = append(got, "b0")
		p.Sleep(15)
		got = append(got, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestProcDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var got []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			e.Go(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(7)
					got = append(got, name)
				}
			})
		}
		e.Run()
		return got
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestSignalFIFO(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var woke []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		e.Go(name, func(p *Proc) {
			s.Wait(p)
			woke = append(woke, name)
		})
	}
	e.Go("waker", func(p *Proc) {
		p.Sleep(5)
		if s.Waiters() != 3 {
			t.Errorf("Waiters = %d, want 3", s.Waiters())
		}
		s.Signal()
		p.Sleep(5)
		s.Broadcast()
	})
	e.Run()
	want := []string{"x", "y", "z"}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("wake order %v, want %v", woke, want)
		}
	}
}

func TestWaitTimeout(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var gotSignal, gotTimeout bool
	var tSignal, tTimeout Time
	e.Go("signaled", func(p *Proc) {
		gotSignal = s.WaitTimeout(p, 100)
		tSignal = p.Now()
	})
	e.Go("timedout", func(p *Proc) {
		p.Sleep(1)
		gotTimeout = s.WaitTimeout(p, 30)
		tTimeout = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(10)
		s.Signal() // wakes "signaled" (FIFO head)
	})
	e.Run()
	if !gotSignal || tSignal != 10 {
		t.Fatalf("signaled: ok=%v at %v, want true at 10", gotSignal, tSignal)
	}
	if gotTimeout || tTimeout != 31 {
		t.Fatalf("timedout: ok=%v at %v, want false at 31", gotTimeout, tTimeout)
	}
	if s.Waiters() != 0 {
		t.Fatalf("Waiters = %d after timeout, want 0", s.Waiters())
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		e.Go("worker", func(p *Proc) {
			r.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(10)
			inside--
			r.Release()
		})
	}
	end := e.Run()
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if end != 40 {
		t.Fatalf("end = %v, want 40 (4 serialized 10ns holds)", end)
	}
}

func TestResourceReleaseUnheldPanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	defer func() {
		if recover() == nil {
			t.Error("Release of unheld resource did not panic")
		}
	}()
	r.Release()
}

func TestQueueBlockingGet(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, 0)
	var got int
	var at Time
	e.Go("consumer", func(p *Proc) {
		got = q.Get(p)
		at = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(42)
		q.Put(p, 7)
	})
	e.Run()
	if got != 7 || at != 42 {
		t.Fatalf("got %d at %v, want 7 at 42", got, at)
	}
}

func TestQueueCapacityBlocksPut(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, 2)
	var putDone Time
	e.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // must block until consumer drains one
		putDone = p.Now()
	})
	e.Go("consumer", func(p *Proc) {
		p.Sleep(100)
		if v := q.Get(p); v != 1 {
			t.Errorf("Get = %d, want 1", v)
		}
	})
	e.Run()
	if putDone != 100 {
		t.Fatalf("third Put completed at %v, want 100", putDone)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestQueueTryOps(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e, 1)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut("a") {
		t.Fatal("TryPut on empty queue failed")
	}
	if q.TryPut("b") {
		t.Fatal("TryPut on full queue succeeded")
	}
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if v, ok := q.TryGet(); !ok || v != "a" {
		t.Fatalf("TryGet = %q,%v", v, ok)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e, 0)
	var ok1, ok2 bool
	var v2 int
	e.Go("consumer", func(p *Proc) {
		_, ok1 = q.GetTimeout(p, 10)   // nothing arrives: timeout
		v2, ok2 = q.GetTimeout(p, 100) // producer delivers at t=50
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(50)
		q.Put(p, 9)
	})
	e.Run()
	if ok1 {
		t.Fatal("first GetTimeout should have timed out")
	}
	if !ok2 || v2 != 9 {
		t.Fatalf("second GetTimeout = %d,%v want 9,true", v2, ok2)
	}
}

func TestDeadlockPanics(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	e.Go("stuck", func(p *Proc) {
		s.Wait(p) // never signaled
	})
	defer func() {
		if recover() == nil {
			t.Error("deadlocked Run did not panic")
		}
	}()
	e.Run()
}

func TestYield(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Go("a", func(p *Proc) {
		got = append(got, "a1")
		p.Yield()
		got = append(got, "a2")
	})
	e.Go("b", func(p *Proc) {
		got = append(got, "b1")
	})
	e.Run()
	// a yields at t=0, so b ("b1") runs before "a2".
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestResourceUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	var done []Time
	for i := 0; i < 3; i++ {
		e.Go("user", func(p *Proc) {
			r.Use(p, 20)
			done = append(done, p.Now())
		})
	}
	e.Run()
	want := []Time{20, 40, 60}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if r.Held() {
		t.Fatal("resource still held")
	}
}

func TestGoDaemonExcludedFromDeadlock(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	e.GoDaemon("service", func(p *Proc) {
		for {
			s.Wait(p) // blocks forever: legal for a daemon
		}
	})
	e.Go("worker", func(p *Proc) {
		p.Sleep(100)
	})
	if end := e.Run(); end != 100 {
		t.Fatalf("end = %v", end)
	}
}

func TestGoAtStartsLater(t *testing.T) {
	e := NewEngine()
	var started Time
	e.GoAt(500, "late", func(p *Proc) { started = p.Now() })
	e.Run()
	if started != 500 {
		t.Fatalf("started at %v, want 500", started)
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() { fired = true })
	e.RunUntil(100) // inclusive
	if !fired {
		t.Fatal("event at the boundary did not fire")
	}
}

// Property: the event queue pops in nondecreasing time order for any
// insertion pattern.
func TestHeapOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			e.At(d, func() { fired = append(fired, d) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

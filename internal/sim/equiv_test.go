package sim_test

// Equivalence between the optimized engine and the preserved pre-PR event
// loop (internal/sim/baseline): on randomized schedules — including
// cancellations, same-time ties, and callbacks that schedule more events —
// both must fire the same callbacks at the same times in the same order.

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/baseline"
)

// script is a deterministic schedule: ops are replayed identically against
// both engines.
type scriptOp struct {
	delay  sim.Time // After(delay) relative to the op's issue time
	cancel int      // if >= 0, cancel the event created by op `cancel`
	nested int      // how many extra events the callback schedules
}

func makeScript(rng *rand.Rand, n int) []scriptOp {
	ops := make([]scriptOp, n)
	for i := range ops {
		ops[i] = scriptOp{delay: sim.Time(rng.Intn(40)), cancel: -1}
		if i > 0 && rng.Intn(4) == 0 {
			ops[i].cancel = rng.Intn(i)
		}
		if rng.Intn(8) == 0 {
			ops[i].nested = 1 + rng.Intn(3)
		}
	}
	return ops
}

type firing struct {
	id int
	at sim.Time
}

func TestEngineMatchesBaselineOnRandomSchedules(t *testing.T) {
	for trial := int64(0); trial < 25; trial++ {
		rng := rand.New(rand.NewSource(trial))
		ops := makeScript(rng, 1+rng.Intn(400))

		runNew := func() []firing {
			e := sim.NewEngine()
			var fired []firing
			handles := make([]sim.Event, len(ops))
			nextID := len(ops)
			for i, op := range ops {
				i, op := i, op
				handles[i] = e.After(op.delay, func() {
					fired = append(fired, firing{i, e.Now()})
					for k := 0; k < op.nested; k++ {
						id := nextID
						nextID++
						e.After(sim.Time(k*3), func() {
							fired = append(fired, firing{id, e.Now()})
						})
					}
				})
				if op.cancel >= 0 {
					e.Cancel(handles[op.cancel])
				}
			}
			e.Run()
			return fired
		}

		runBaseline := func() []firing {
			e := baseline.NewEngine()
			var fired []firing
			handles := make([]*baseline.Event, len(ops))
			nextID := len(ops)
			for i, op := range ops {
				i, op := i, op
				handles[i] = e.After(op.delay, func() {
					fired = append(fired, firing{i, e.Now()})
					for k := 0; k < op.nested; k++ {
						id := nextID
						nextID++
						e.After(sim.Time(k*3), func() {
							fired = append(fired, firing{id, e.Now()})
						})
					}
				})
				if op.cancel >= 0 {
					e.Cancel(handles[op.cancel])
				}
			}
			e.Run()
			return fired
		}

		got, want := runNew(), runBaseline()
		if len(got) != len(want) {
			t.Fatalf("trial %d: fired %d events, baseline fired %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: divergence at firing %d: new %+v, baseline %+v",
					trial, i, got[i], want[i])
			}
		}
	}
}

// FIFO tie-break: a burst of same-time events interleaved with cancels must
// drain in scheduling order on both engines.
func TestSameTimeBurstMatchesBaseline(t *testing.T) {
	const n = 200
	newOrder := func() []int {
		e := sim.NewEngine()
		var order []int
		evs := make([]sim.Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.At(7, func() { order = append(order, i) })
		}
		for i := 0; i < n; i += 3 {
			e.Cancel(evs[i])
		}
		e.Run()
		return order
	}()
	baseOrder := func() []int {
		e := baseline.NewEngine()
		var order []int
		evs := make([]*baseline.Event, n)
		for i := 0; i < n; i++ {
			i := i
			evs[i] = e.At(7, func() { order = append(order, i) })
		}
		for i := 0; i < n; i += 3 {
			e.Cancel(evs[i])
		}
		e.Run()
		return order
	}()
	if len(newOrder) != len(baseOrder) {
		t.Fatalf("fired %d, baseline %d", len(newOrder), len(baseOrder))
	}
	for i := range baseOrder {
		if newOrder[i] != baseOrder[i] {
			t.Fatalf("tie-break divergence at %d: %v vs %v", i, newOrder, baseOrder)
		}
	}
}

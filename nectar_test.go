package nectar_test

// Facade tests: everything here goes through the public package surface
// (the repro root package, imported as nectar), the way a downstream user
// would.

import (
	"bytes"
	"fmt"
	"testing"

	"repro"
	"repro/internal/ipsc"
)

func TestFacadeQuickstart(t *testing.T) {
	sys := nectar.New(nectar.SingleHub(2))
	rx := sys.CAB(1)
	inbox := rx.Kernel.NewMailbox("inbox", 64<<10)
	rx.TP.Register(1, inbox)

	var got []byte
	var arrived, sent nectar.Time
	rx.Kernel.Spawn("receiver", func(th *nectar.Thread) {
		msg := inbox.Get(th)
		got = msg.Bytes()
		arrived = msg.Arrived
		inbox.Release(msg)
	})
	sys.CAB(0).Kernel.Spawn("sender", func(th *nectar.Thread) {
		sent = th.Proc().Now()
		if err := sys.CAB(0).TP.SendDatagram(th, 1, 1, 0, []byte("hello")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	sys.Run()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if lat := arrived - sent; lat >= 30*nectar.Microsecond {
		t.Fatalf("latency %v breaks the paper's 30us goal", lat)
	}
}

func TestFacadeTopologies(t *testing.T) {
	mesh := nectar.New(nectar.Mesh(2, 2, 1))
	if mesh.NumCABs() != 4 {
		t.Fatalf("mesh CABs = %d", mesh.NumCABs())
	}
	line := nectar.New(nectar.Line(3, 2))
	if line.NumCABs() != 6 {
		t.Fatalf("line CABs = %d", line.NumCABs())
	}
	torus := nectar.New(nectar.Torus(3, 3, 1))
	if torus.NumCABs() != 9 {
		t.Fatalf("torus CABs = %d", torus.NumCABs())
	}
	torus3d := nectar.New(nectar.Torus3D(2, 2, 3, 1))
	if torus3d.NumCABs() != 12 {
		t.Fatalf("3-D torus CABs = %d", torus3d.NumCABs())
	}
	ft := nectar.New(nectar.FatTree(4, 2, 2))
	if ft.NumCABs() != 8 {
		t.Fatalf("fat tree CABs = %d", ft.NumCABs())
	}
}

// TestFacadeRoutingPolicies sends a corner-to-corner message on a 3-D
// torus under each routing policy through the public surface; every
// policy must deliver, and the default must equal explicit BFS.
func TestFacadeRoutingPolicies(t *testing.T) {
	for _, pol := range []nectar.RoutingPolicy{
		nectar.RoutingBFS, nectar.RoutingDimOrder, nectar.RoutingAdaptive,
	} {
		sys := nectar.New(nectar.Torus3D(2, 2, 2, 1), nectar.WithRouting(pol))
		last := sys.NumCABs() - 1
		rx := sys.CAB(last)
		inbox := rx.Kernel.NewMailbox("inbox", 64<<10)
		rx.TP.Register(1, inbox)
		var got []byte
		rx.Kernel.Spawn("receiver", func(th *nectar.Thread) {
			msg := inbox.Get(th)
			got = msg.Bytes()
			inbox.Release(msg)
		})
		sys.CAB(0).Kernel.Spawn("sender", func(th *nectar.Thread) {
			if err := sys.CAB(0).TP.SendDatagram(th, last, 1, 0, []byte("across")); err != nil {
				t.Errorf("%s: send: %v", pol, err)
			}
		})
		sys.Run()
		if string(got) != "across" {
			t.Fatalf("%s: got %q", pol, got)
		}
	}
}

func TestFacadeNectarineApp(t *testing.T) {
	sys := nectar.New(nectar.SingleHub(2))
	app := nectar.NewApp(sys)
	var echoed string
	app.NewCABTask("pong", 1, func(tc *nectar.TaskCtx) {
		m := tc.Recv()
		echoed = string(m.Data)
	})
	app.NewCABTask("ping", 0, func(tc *nectar.TaskCtx) {
		tc.Send("pong", 1, nectar.Bytes([]byte("through the facade")))
	})
	app.Run()
	if echoed != "through the facade" {
		t.Fatalf("echoed %q", echoed)
	}
}

func TestFacadeNodes(t *testing.T) {
	sys := nectar.New(nectar.SingleHub(2))
	a := nectar.NewNode(sys.CAB(0), "sunA")
	b := nectar.NewNode(sys.CAB(1), "sunB")
	_ = a
	if b.Name() != "sunB" || b.CABID() != 1 {
		t.Fatalf("node accessors: %q %d", b.Name(), b.CABID())
	}
}

func TestFacadeIPSC(t *testing.T) {
	sys := nectar.New(nectar.SingleHub(4))
	var sum int64
	nectar.RunIPSC(sys, 4, func(c *ipsc.Ctx) {
		s := c.Gisum(int64(c.Mynode()))
		if c.Mynode() == 0 {
			sum = s
		}
	})
	if sum != 6 {
		t.Fatalf("Gisum = %d", sum)
	}
}

func TestFacadeCollectives(t *testing.T) {
	sys := nectar.New(nectar.SingleHub(4), nectar.WithCollAlgorithm("tree"))
	g := nectar.NewCollGroup(sys, 1, []int{0, 1, 2, 3})
	sums := make([]int64, 4)
	for r := 0; r < 4; r++ {
		r := r
		c := g.Member(r)
		sys.CAB(r).Kernel.Spawn(fmt.Sprintf("member-%d", r), func(th *nectar.Thread) {
			out, err := c.Allreduce(th, nectar.SumInt64Op, nectar.Int64Bytes([]int64{int64(r + 1)}))
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			sums[r] = nectar.BytesInt64(out)[0]
		})
	}
	sys.Run()
	for r, s := range sums {
		if s != 10 {
			t.Fatalf("rank %d: allreduce sum %d, want 10", r, s)
		}
	}
}

func TestFacadeApplications(t *testing.T) {
	sys := nectar.New(nectar.SingleHub(6))
	cfg := nectar.DefaultVisionConfig()
	cfg.Frames = 2
	res, err := nectar.RunVision(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesPerSec <= 0 {
		t.Fatal("vision produced no frame rate")
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	exps := nectar.Experiments()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E12", "F1", "A1", "X4"} {
		if !ids[want] {
			t.Fatalf("experiment %s missing", want)
		}
	}
}

func TestFacadeDeterminism(t *testing.T) {
	run := func() string {
		sys := nectar.New(nectar.SingleHub(3))
		rx := sys.CAB(0)
		mb := rx.Kernel.NewMailbox("in", 1<<20)
		rx.TP.Register(1, mb)
		var log bytes.Buffer
		rx.Kernel.SpawnDaemon("rx", func(th *nectar.Thread) {
			for {
				msg := mb.Get(th)
				fmt.Fprintf(&log, "%d@%v;", msg.Src, msg.Arrived)
				mb.Release(msg)
			}
		})
		for i := 1; i < 3; i++ {
			st := sys.CAB(i)
			st.Kernel.Spawn("tx", func(th *nectar.Thread) {
				for j := 0; j < 4; j++ {
					st.TP.StreamSend(th, 0, 1, 0, make([]byte, 500))
				}
			})
		}
		sys.Run()
		return log.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic:\n%s\nvs\n%s", a, b)
	}
}

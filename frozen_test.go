package nectar_test

// Frozen headline numbers: the simulation is deterministic, so the key
// measurements of the reproduction are pinned exactly. If a refactor
// changes any of these, it changed the modeled system — the diff must be
// justified against the paper, not waved through.

import (
	"strings"
	"testing"

	"repro"
)

func runExperiment(t *testing.T, id string) string {
	t.Helper()
	for _, e := range nectar.Experiments() {
		if e.ID == id {
			res := e.Run()
			if !res.Pass {
				t.Fatalf("%s regressed:\n%s", id, res)
			}
			return res.String()
		}
	}
	t.Fatalf("experiment %s not registered", id)
	return ""
}

func TestFrozenHubNumbers(t *testing.T) {
	out := runExperiment(t, "E1")
	for _, want := range []string{
		"connection setup + first byte      700ns (10 cycles)  700ns",
		"established-circuit byte transfer  350ns (5 cycles)   350ns",
		"controller grant interval          70ns (1 cycle)     70ns",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFrozenLatencyGoals(t *testing.T) {
	out := runExperiment(t, "E3")
	for _, want := range []string{
		"CAB process to CAB process    64B   < 30us   28.38us   true",
		"node process to node process  64B   < 100us  76.90us   true",
		"connection through one HUB    -     < 1us    700ns     true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E3 output missing %q:\n%s", want, out)
		}
	}
}

func TestFrozenKernelNumbers(t *testing.T) {
	out := runExperiment(t, "E4")
	if !strings.Contains(out, "thread context switch               10-15us  12.00us") {
		t.Fatalf("E4 thread switch drifted:\n%s", out)
	}
}

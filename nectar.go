// Package nectar is a complete, simulation-backed reproduction of the
// Nectar system — "The Design of Nectar: A Network Backplane for
// Heterogeneous Multicomputers" (Arnould, Bitz, Cooper, Kung, Sansom,
// Steenkiste; ASPLOS 1989).
//
// The package is the public facade over the full implementation:
//
//   - the HUB crossbar switch with its hardware datalink command set;
//   - fiber links, topologies (single HUB, clusters, 2-D meshes, tori,
//     3-D tori, fat trees) and routing — deterministic BFS shortest-path,
//     dimension-order, and deadlock-free minimal-adaptive policies —
//     including multicast trees;
//   - the CAB communication processor: CPU, DMA, protected memory,
//     hardware checksum and timers;
//   - the CAB kernel (threads, mailboxes), the datalink (circuit and
//     packet switching built from HUB commands), and the three transport
//     protocols (datagram, byte stream, request-response);
//   - nodes with the three CAB-node interfaces (shared memory, socket,
//     network driver), plus a 10 Mb/s Ethernet baseline for comparison;
//   - Nectarine, the task/buffer/message programming layer, with an iPSC
//     hypercube compatibility library on top;
//   - a CAB-offloaded collective-communication subsystem (barrier,
//     broadcast, reductions, gather/scatter) that rides the HUB's
//     hardware multicast where the topology allows;
//   - the paper's applications (vision pipeline, parallel production
//     system, simulated annealing) and the full experiment harness that
//     regenerates every quantitative claim in the paper.
//
// Quick start:
//
//	sys := nectar.New(nectar.SingleHub(2))
//	rx := sys.CAB(1)
//	mb := rx.Kernel.NewMailbox("in", 64<<10)
//	rx.TP.Register(1, mb)
//	rx.Kernel.Spawn("rx", func(th *nectar.Thread) {
//	    msg := mb.Get(th)
//	    fmt.Printf("got %d bytes at %v\n", msg.Len, msg.Arrived)
//	    mb.Release(msg)
//	})
//	sys.CAB(0).Kernel.Spawn("tx", func(th *nectar.Thread) {
//	    sys.CAB(0).TP.SendDatagram(th, 1, 1, 0, []byte("hello"))
//	})
//	sys.Run()
//
// New is the single construction path: it takes a Topology value built by
// one of the shape constructors — SingleHub, Mesh, Line, Torus, Torus3D,
// or FatTree — plus functional options, and there is no other way to
// assemble a System. All shapes share one options struct (ports per HUB,
// propagation delay, error model, carried in Params.Topo) rather than
// per-shape positional parameters. WithMetrics enables the metrics
// registry, WithTraceSpans enables end-to-end span tracing,
// WithFaultRecovery arms link probing and peer heartbeats, WithRouting
// selects the routing policy (BFS shortest-path by default; dimension-order
// or deadlock-free adaptive routing on request), and WithParams carries a
// fully tuned parameter set.
//
// # Error contract
//
// Constructors and accessors distinguish programmer errors from runtime
// conditions. Programmer errors — a malformed topology (zero CABs, mesh
// that does not fit the HUB port count), or an out-of-range System.CAB
// index — panic with a descriptive message prefixed "nectar: ". Runtime
// conditions that correct protocol code must handle — peer death, checksum
// mismatches, mailbox overflow — are returned as error values (or
// documented drop behavior) by the layer that detects them.
//
// Everything executes in simulated time on a deterministic discrete-event
// engine: protocol code is real (framing, checksums, retransmission,
// crossbar arbitration, flow control), only the clock is virtual. Hardware
// constants are the paper's: 70 ns HUB cycles, 700 ns connection setup,
// 100 Mb/s fibers, 10 MB/s VME, 12 us thread switches.
package nectar

import (
	"repro/internal/apps"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ipsc"
	"repro/internal/kernel"
	"repro/internal/nectarine"
	"repro/internal/node"
	"repro/internal/obs/slo"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Time is simulated time in nanoseconds.
type Time = sim.Time

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// System is an assembled Nectar multicomputer: HUBs, fibers, and a full
// software stack (kernel, datalink, transport) on every CAB.
type System = core.System

// CABStack is one CAB's hardware board plus kernel, datalink and transport.
type CABStack = core.CABStack

// Params aggregates every model parameter (hardware constants are fixed by
// the paper; software costs are tunable).
type Params = core.Params

// Thread is a CAB kernel thread.
type Thread = kernel.Thread

// Mailbox is the CAB kernel's message buffer abstraction.
type Mailbox = kernel.Mailbox

// Node is a Nectar node (a Sun/Warp behind a VME bus and a CAB).
type Node = node.Node

// App is a Nectarine application; Task and TaskCtx are its tasks.
type App = nectarine.App

// TaskCtx is the execution context of a Nectarine task.
type TaskCtx = nectarine.TaskCtx

// Buffer is a Nectarine message buffer; typed (Words) buffers get
// representation conversion between heterogeneous machines.
type Buffer = nectarine.Buffer

// Bytes wraps raw data in a Buffer.
func Bytes(data []byte) Buffer { return nectarine.Bytes(data) }

// Words builds a typed 32-bit buffer in the sender's byte order.
func Words(vals []uint32, bigEndian bool) Buffer { return nectarine.Words(vals, bigEndian) }

// Histogram collects latency samples.
type Histogram = trace.Histogram

// Tracer records end-to-end message spans (enable with Params.TraceSpans);
// Span is one layer's timed interval within a traced message.
type (
	Tracer = trace.Tracer
	Span   = trace.Span
)

// Registry is the metrics registry (enable with Params.Metrics): counters,
// time-weighted gauges, histograms and read-out functions from every layer,
// with snapshot/diff and text/JSON export.
type Registry = trace.Registry

// DefaultParams returns the prototype parameter set used throughout the
// paper reproduction.
func DefaultParams() Params { return core.DefaultParams() }

// Topology describes the network shape passed to New; build one with
// SingleHub, Mesh, Line, Torus, Torus3D, or FatTree.
type Topology = core.Topology

// Option configures a System under construction; options apply in order.
type Option = core.Option

// SingleHub describes the paper's Figure 2 system: one HUB with nCABs CABs.
func SingleHub(nCABs int) Topology { return core.SingleHub(nCABs) }

// Mesh describes the paper's Figure 4 system: a rows x cols 2-D mesh of
// HUB clusters with cabsPerHub CABs each.
func Mesh(rows, cols, cabsPerHub int) Topology { return core.Mesh(rows, cols, cabsPerHub) }

// Line describes a chain of nHubs HUB clusters with cabsPerHub CABs each
// (useful for hop-count studies).
func Line(nHubs, cabsPerHub int) Topology { return core.Line(nHubs, cabsPerHub) }

// Torus describes a rows x cols 2-D torus of HUB clusters: a mesh whose
// rows and columns close into rings.
func Torus(rows, cols, cabsPerHub int) Topology { return core.Torus(rows, cols, cabsPerHub) }

// Torus3D describes an x by y by z 3-D torus of HUB clusters, the
// scale-out shape for hundreds of HUBs.
func Torus3D(x, y, z, cabsPerHub int) Topology { return core.Torus3D(x, y, z, cabsPerHub) }

// FatTree describes a two-level fat tree: leafHubs leaf HUBs each wired to
// every one of spineHubs spine HUBs, with cabsPerLeaf CABs per leaf.
func FatTree(leafHubs, spineHubs, cabsPerLeaf int) Topology {
	return core.FatTree(leafHubs, spineHubs, cabsPerLeaf)
}

// RoutingPolicy names a route-computation strategy for WithRouting.
type RoutingPolicy = topo.Policy

// Routing policies: deterministic BFS shortest-path (the default),
// deterministic dimension-order (grids) / up-down (fat trees), and
// deadlock-free minimal-adaptive routing by downstream queue depth with
// dimension-order escape paths.
const (
	RoutingBFS      = topo.PolicyBFS
	RoutingDimOrder = topo.PolicyDimOrder
	RoutingAdaptive = topo.PolicyAdaptive
)

// WithRouting selects the routing policy every CAB's datalink uses. The
// route cache, FlushRoutes, and fault-recovery route flushes behave
// identically under every policy.
func WithRouting(policy RoutingPolicy) Option { return core.WithRouting(policy) }

// WithParams replaces the whole parameter set; options after it refine the
// replaced set.
func WithParams(p Params) Option { return core.WithParams(p) }

// WithMetrics enables the metrics registry (System.Reg).
func WithMetrics() Option { return core.WithMetrics() }

// WithTraceSpans enables end-to-end message span tracing (System.Tr).
func WithTraceSpans() Option { return core.WithTraceSpans() }

// WithCollAlgorithm forces the collective subsystem's algorithm family
// ("tree", "rd", "ring", "mcast", or "comb") in place of automatic
// selection.
func WithCollAlgorithm(name string) Option { return core.WithCollAlgorithm(name) }

// WithHubCombining arms the in-network combining engine on every HUB:
// reduce, allreduce, and barrier merge their operands at the switch
// (fetch-and-add / reduce-on-the-wire / barrier ack aggregation) instead
// of at the endpoints, and the collective layer auto-selects HUB
// combining where it applies — hierarchically on multi-HUB meshes.
// Disabled systems carry no combining state and replay digest-identically
// to builds without the feature.
func WithHubCombining() Option { return core.WithHubCombining() }

// WithFaultRecovery arms automatic failure detection and recovery: link
// probing, peer heartbeats, and bounded retransmission backoff.
func WithFaultRecovery() Option { return core.WithFaultRecovery() }

// WithFlows arms the flow-level congestion observatory (System.Flows): per
// (src, dst, protocol) accounting with a k-entry heavy-hitter sketch
// (k <= 0 selects the default size).
func WithFlows(k int) Option { return core.WithFlows(k) }

// WithObservatory arms the full observability plane in one option: flow
// accounting, the virtual-time sampler, and the flight recorder.
func WithObservatory() Option { return core.WithObservatory() }

// Overload control (default-off). When armed with WithOverloadControl,
// every transport operation may carry a priority class and a deadline
// (the Opts variants of Request/StreamSend/VTransact): the CAB send queue
// is weighted-deficit scheduled by class, deadlines are enforced at every
// queueing point, admission control sheds lowest-class-first with a
// deterministic fast-reject, and peers that keep rejecting trip a circuit
// breaker with jittered half-open recovery.
type (
	// Class is a transport priority class (ClassNormal, ClassCritical,
	// ClassBulk).
	Class = transport.Class
	// SendOpts carries a per-operation class and deadline into the
	// classed transport entry points.
	SendOpts = transport.SendOpts
	// OverloadParams tunes the overload-control subsystem.
	OverloadParams = transport.OverloadParams
	// ErrOverload is the deterministic fast-reject an admission-controlled
	// transport returns instead of queueing doomed work.
	ErrOverload = transport.ErrOverload
	// ErrDeadlineExpired reports an operation shed because its deadline
	// passed before (or while) it was sent.
	ErrDeadlineExpired = transport.ErrDeadlineExpired
)

// Transport priority classes. ClassNormal is the zero value: unclassed
// sends are normal, and the wire format is unchanged when the subsystem is
// off.
const (
	ClassNormal   = transport.ClassNormal
	ClassCritical = transport.ClassCritical
	ClassBulk     = transport.ClassBulk
)

// DefaultOverloadParams returns the enabled overload-control parameter set
// (documented defaults fill the rest).
func DefaultOverloadParams() OverloadParams { return transport.DefaultOverloadParams() }

// SLO engine (default-off). When armed with WithSLO, the transport reports
// every reliable operation's outcome (kind, priority class, latency,
// success) to a deterministic engine evaluated in virtual time: declared
// objectives get streaming windowed quantile sketches, error budgets, and
// multi-window (fast/slow) burn rates; breaching both windows fires a
// deterministic alert carrying a diagnosis bundle — the worst retained
// trace trees with critical-path attribution, top flows, the hottest
// weathermap port, and the flight-recorder window. Pairs with tail-based
// span sampling (WithTailSampling, derived automatically from the
// objectives): only anomalous, SLO-breaching, or head-sampled trace trees
// are retained, so tracing stays affordable at fleet scale.
type (
	// SLOParams configures the SLO engine: objectives plus window and
	// burn-rate tuning.
	SLOParams = slo.Params
	// SLOObjective is one declared objective ("reqresp critical: p99 <
	// 2ms, success >= 99.9% over a 50ms window").
	SLOObjective = slo.Objective
	// SLOEngine is the armed engine (System.SLO): status, the alert
	// stream, and captured diagnosis bundles.
	SLOEngine = slo.Engine
	// SLOAlert is one burn-rate alert (or its clear).
	SLOAlert = slo.Alert
	// SLOBundle is one captured diagnosis artifact.
	SLOBundle = slo.Bundle
	// TailConfig parameterizes tail-based span sampling.
	TailConfig = trace.TailConfig
)

// SLO operation kinds (SLOObjective.Kind) and the match-any class.
const (
	SLOReqResp  = slo.KindReqResp
	SLOStream   = slo.KindStream
	SLOVMTP     = slo.KindVMTP
	SLOAnyClass = slo.AnyClass
)

// WithSLO arms the SLO engine with the declared objectives, plus the
// evidence plane its diagnosis bundles draw on: the flight recorder, flow
// accounting, and tail-sampled span tracing with per-protocol latency
// bounds derived from the objectives.
func WithSLO(sp SLOParams) Option { return core.WithSLO(sp) }

// WithTailSampling arms tail-based span sampling with an explicit config
// (WithSLO derives one automatically; use this for standalone sampling or
// to override the derived bounds).
func WithTailSampling(cfg TailConfig) Option { return core.WithTailSampling(cfg) }

// WithOverloadControl arms the overload-control subsystem: priority
// classes, deadline propagation, admission control, and circuit breaking.
func WithOverloadControl(op OverloadParams) Option { return core.WithOverloadControl(op) }

// New assembles a Nectar system from a topology and options — the only
// construction path. It panics with a descriptive "nectar: ..." message
// when the topology is malformed or does not fit the HUB port count (see
// the error contract above).
func New(t Topology, opts ...Option) *System { return core.New(t, opts...) }

// NewNode attaches a node to a CAB via a VME bus.
func NewNode(stack *CABStack, name string) *Node {
	return node.New(stack, name, node.DefaultParams())
}

// NewApp creates a Nectarine application on a system.
func NewApp(sys *System) *App { return nectarine.NewApp(sys) }

// RunIPSC runs an iPSC hypercube program with nprocs processes on the
// system (see internal/ipsc for the primitives).
func RunIPSC(sys *System, nprocs int, body func(c *ipsc.Ctx)) Time {
	return ipsc.Run(sys, nprocs, body)
}

// Experiments returns the full paper-reproduction experiment suite
// (E1-E12, F1); each returns printable tables and a pass flag.
func Experiments() []exp.Experiment { return exp.All() }

// Collective communication (internal/coll): CAB-offloaded barrier,
// broadcast, reductions, and the gather/scatter family over the HUB
// hardware multicast.
type (
	// CollGroup is a collective group (deterministic rank per member CAB).
	CollGroup = coll.Group
	// CollComm is one member's endpoint for the collective operations.
	CollComm = coll.Comm
	// CollOp is a reduction operator (SumInt64, MaxInt64, SumFloat64...).
	CollOp = coll.Op
)

// NewCollGroup declares collective group id over the given member CABs;
// drive the operations from kernel threads via Group.Member. Nectarine
// tasks use App.NewCollective instead.
func NewCollGroup(sys *System, id int, cabs []int, opts ...coll.Option) *CollGroup {
	return coll.NewGroup(sys, id, cabs, opts...)
}

// Reduction operators for Reduce/Allreduce (8-byte little-endian lanes).
var (
	SumInt64Op   = coll.SumInt64
	MaxInt64Op   = coll.MaxInt64
	SumFloat64Op = coll.SumFloat64
)

// Lane converters between typed slices and the byte payloads the
// collective operations move.
var (
	Int64Bytes   = coll.Int64Bytes
	BytesInt64   = coll.BytesInt64
	Float64Bytes = coll.Float64Bytes
	BytesFloat64 = coll.BytesFloat64
)

// Application entry points and configurations (paper section 7).
type (
	// VisionConfig parameterizes the vision pipeline.
	VisionConfig = apps.VisionConfig
	// ProductionConfig parameterizes the production system.
	ProductionConfig = apps.ProductionConfig
	// AnnealConfig parameterizes the iPSC annealer.
	AnnealConfig = apps.AnnealConfig
	// TxnConfig parameterizes the distributed transaction workload.
	TxnConfig = apps.TxnConfig
	// DSMConfig parameterizes the shared-virtual-memory workload.
	DSMConfig = apps.DSMConfig
)

// Application entry points and default configurations.
var (
	// RunVision runs the Warp + distributed-spatial-database pipeline.
	RunVision = apps.RunVision
	// RunProduction runs the distributed-RETE production system.
	RunProduction = apps.RunProduction
	// RunAnnealing runs the iPSC simulated annealer.
	RunAnnealing = apps.RunAnnealing
	// RunTransactions runs the Camelot-style 2PC workload.
	RunTransactions = apps.RunTransactions
	// RunDSM runs the shared-virtual-memory workload.
	RunDSM = apps.RunDSM

	DefaultVisionConfig     = apps.DefaultVisionConfig
	DefaultProductionConfig = apps.DefaultProductionConfig
	DefaultAnnealConfig     = apps.DefaultAnnealConfig
	DefaultTxnConfig        = apps.DefaultTxnConfig
	DefaultDSMConfig        = apps.DefaultDSMConfig
)

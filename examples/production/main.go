// Production runs the paper's parallel production system (§7): a
// distributed RETE match network partitioned across CABs, tokens flowing
// through a distributed task queue, sweeping the number of partitions to
// show match-parallel speedup.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/apps"
)

func main() {
	maxParts := flag.Int("maxparts", 4, "sweep match partitions 1..maxparts")
	wmes := flag.Int("wmes", 256, "initial working-memory elements")
	flag.Parse()

	fmt.Println("distributed-RETE production system (paper section 7)")
	var base nectar.Time
	for parts := 1; parts <= *maxParts; parts *= 2 {
		cfg := apps.DefaultProductionConfig()
		cfg.MatchNodes = parts
		cfg.InitialWMEs = *wmes
		sys := nectar.New(nectar.SingleHub(1 + parts))
		res, err := nectar.RunProduction(sys, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if parts == 1 {
			base = res.Elapsed
		}
		fmt.Printf("  %d partition(s): %d tokens, %d firings, elapsed %v, speedup %.2fx\n",
			parts, res.Tokens, res.Firings, res.Elapsed, float64(base)/float64(res.Elapsed))
	}
}

// Vision runs the paper's first application (§7): a Warp machine performs
// low-level image analysis on frames shipped over the Nectar-net at video
// rate; extracted features go to a spatial database distributed over Sun
// workstations; a recognition task issues low-latency queries against it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/apps"
)

func main() {
	frames := flag.Int("frames", 8, "frames to process")
	frameKB := flag.Int("framekb", 256, "raw frame size in KB")
	dbNodes := flag.Int("db", 3, "spatial database partitions (Suns)")
	queries := flag.Int("queries", 16, "recognition queries per frame")
	flag.Parse()

	cfg := apps.DefaultVisionConfig()
	cfg.Frames = *frames
	cfg.FrameBytes = *frameKB << 10
	cfg.DBNodes = *dbNodes
	cfg.QueriesPerFrame = *queries

	sys := nectar.New(nectar.SingleHub(3 + cfg.DBNodes))
	res, err := nectar.RunVision(sys, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("vision pipeline: %d frames of %d KB through camera -> Warp -> %d-way spatial DB\n",
		res.Frames, cfg.FrameBytes>>10, cfg.DBNodes)
	fmt.Printf("  frame rate:        %.1f frames/s\n", res.FramesPerSec)
	fmt.Printf("  Sobel features:    %d found on the systolic array, %d inserted\n",
		res.FeaturesFound, res.InsertsServed)
	fmt.Printf("  query latency p50: %v\n", res.QueryLatency.Median())
	fmt.Printf("  query latency p95: %v\n", res.QueryLatency.Quantile(0.95))
}

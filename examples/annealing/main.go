// Annealing runs a hypercube application ported to Nectar through the iPSC
// compatibility library (§7): parallel simulated annealing for graph
// partitioning, with flip exchange and global reductions each sweep.
package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/apps"
)

func main() {
	maxProcs := flag.Int("maxprocs", 8, "sweep process counts 1..maxprocs (powers of two)")
	vertices := flag.Int("vertices", 256, "graph vertices")
	sweeps := flag.Int("sweeps", 12, "annealing sweeps")
	flag.Parse()

	fmt.Println("iPSC simulated annealing (paper section 7)")
	var base nectar.Time
	for procs := 1; procs <= *maxProcs; procs *= 2 {
		cfg := apps.DefaultAnnealConfig()
		cfg.Procs = procs
		cfg.Vertices = *vertices
		cfg.Sweeps = *sweeps
		sys := nectar.New(nectar.SingleHub(procs))
		res := nectar.RunAnnealing(sys, cfg)
		if procs == 1 {
			base = res.Elapsed
		}
		fmt.Printf("  %d process(es): cut %d -> %d, %d accepted, elapsed %v, speedup %.2fx\n",
			procs, res.InitialCut, res.FinalCut, res.Accepted, res.Elapsed,
			float64(base)/float64(res.Elapsed))
	}
}

// Quickstart: build a single-HUB Nectar system, exchange messages over the
// three transport protocols, and print the latencies — the 30-second tour
// of the public API.
package main

import (
	"fmt"

	"repro"
)

func main() {
	sys := nectar.New(nectar.SingleHub(2))

	// Register a mailbox at box 1 of CAB 1 and run a receiver thread.
	rx := sys.CAB(1)
	inbox := rx.Kernel.NewMailbox("inbox", 64<<10)
	rx.TP.Register(1, inbox)

	rx.Kernel.Spawn("receiver", func(th *nectar.Thread) {
		for i := 0; i < 2; i++ {
			msg := inbox.Get(th)
			proto := "datagram:   "
			if i == 1 {
				proto = "byte-stream:"
			}
			fmt.Printf("%s %q from CAB %d after %v\n",
				proto, msg.Bytes(), msg.Src, msg.Arrived)
			inbox.Release(msg)
		}
	})

	// An echo server for the request-response protocol at box 7.
	srvBox := rx.Kernel.NewMailbox("server", 64<<10)
	rx.TP.Register(7, srvBox)
	rx.Kernel.SpawnDaemon("echo-server", func(th *nectar.Thread) {
		for {
			req := srvBox.Get(th)
			rx.TP.Respond(th, req, append([]byte("echo:"), req.Bytes()...))
			srvBox.Release(req)
		}
	})

	// The sender exercises all three protocols from CAB 0.
	tx := sys.CAB(0)
	tx.Kernel.Spawn("sender", func(th *nectar.Thread) {
		if err := tx.TP.SendDatagram(th, 1, 1, 0, []byte("unreliable hello")); err != nil {
			panic(err)
		}
		if err := tx.TP.StreamSend(th, 1, 1, 0, []byte("reliable hello")); err != nil {
			panic(err)
		}
		start := th.Proc().Now()
		resp, err := tx.TP.Request(th, 1, 7, 2, []byte("ping"))
		if err != nil {
			panic(err)
		}
		fmt.Printf("req-resp:    %q round trip in %v\n", resp, th.Proc().Now()-start)
	})

	end := sys.Run()
	fmt.Printf("\nsimulation finished at %v after %d events\n", end, sys.Eng.Executed())
}

// Multihub demonstrates scaling beyond one HUB (paper Figures 3-4): a 2-D
// mesh of HUB clusters, Nectarine tasks communicating across it (including
// a heterogeneous Warp -> Sun transfer with representation conversion), and
// a hardware multicast over the tree.
package main

import (
	"fmt"

	"repro"
	"repro/internal/nectarine"
	"repro/internal/trace"
)

func main() {
	// A 2x2 mesh with two CABs per HUB cluster: 8 CABs, 4 HUBs.
	sys := nectar.New(nectar.Mesh(2, 2, 2))
	fmt.Printf("built 2x2 mesh: %d HUBs, %d CABs\n", len(sys.Net.Hubs()), sys.NumCABs())
	hops, _ := sys.Net.Route(0, sys.NumCABs()-1)
	fmt.Printf("route CAB0 -> CAB%d crosses %d HUBs\n", sys.NumCABs()-1, len(hops))

	app := nectar.NewApp(sys)
	// A little-endian Warp in one corner, a big-endian Sun in the other.
	app.SetMachine(0, nectarine.Warp)
	app.SetMachine(7, nectarine.Sun4)

	app.NewCABTask("sun", 7, func(tc *nectarine.TaskCtx) {
		m := tc.Recv()
		vals := nectarine.DecodeWords(m.Data, true)
		fmt.Printf("sun received %d words from %s across the mesh at %v: %v\n",
			len(vals), m.From, m.Arrived, vals)
	})
	app.NewCABTask("warp", 0, func(tc *nectarine.TaskCtx) {
		// Typed words in Warp (little-endian) order; Nectarine converts.
		tc.Send("sun", 1, nectarine.Words([]uint32{1, 2, 3, 0xCAFE}, false))
	})
	app.Start()
	sys.Run()

	// Hardware multicast from CAB0 to three corners, one copy on the wire.
	sys2 := nectar.New(nectar.Mesh(2, 2, 2))
	got := 0
	for _, d := range []int{3, 5, 7} {
		st := sys2.CAB(d)
		st.DL.SetReceiver(func(p []byte, _ *trace.Span) { got++ })
	}
	sys2.CAB(0).Kernel.Spawn("mcast", func(th *nectar.Thread) {
		if err := sys2.CAB(0).DL.SendMulticastCircuit(th, []int{3, 5, 7}, make([]byte, 2048)); err != nil {
			panic(err)
		}
	})
	sys2.Run()
	fmt.Printf("multicast: one 2KB packet fanned out in the crossbars reached %d destinations\n", got)
}

// Dsm runs the shared-virtual-memory application of paper §7 ("the
// simulation of shared virtual memory over a distributed system using
// Mach"): an ownership-based page coherence protocol where every fault,
// invalidation and dirty-page recall is a Nectar request-response
// transaction, with the CAB acting as the operating system co-processor.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/apps"
)

func main() {
	workers := flag.Int("workers", 4, "worker CABs sharing the address space")
	pages := flag.Int("pages", 8, "shared pages")
	ops := flag.Int("ops", 60, "page accesses per worker")
	flag.Parse()

	cfg := apps.DefaultDSMConfig()
	cfg.Workers = *workers
	cfg.Pages = *pages
	cfg.OpsPerWorker = *ops

	sys := nectar.New(nectar.SingleHub(1 + cfg.Workers))
	res, err := apps.RunDSM(sys, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("shared virtual memory: %d workers, %d pages of %d bytes\n",
		cfg.Workers, cfg.Pages, cfg.PageBytes)
	fmt.Printf("  faults: %d read, %d write (p50 %v, p95 %v)\n",
		res.ReadFaults, res.WriteFaults, res.FaultLatency.Median(), res.FaultLatency.Quantile(0.95))
	fmt.Printf("  coherence traffic: %d invalidations, %d dirty recalls; %d local hits\n",
		res.Invalidations, res.Recalls, res.LocalHits)
	fmt.Printf("  contended counter: %d (expected %d) — %s\n",
		res.CounterFinal, res.CounterExpected,
		map[bool]string{true: "no lost updates", false: "LOST UPDATES"}[res.CounterFinal == res.CounterExpected])
}

// Transactions runs the Camelot-style distributed transaction workload of
// paper §7 ("distributed transaction systems, such as Camelot") — a
// two-phase commit over the request-response transport, with resource
// managers on their own CABs — and reports commit latency, which is pure
// request-response round trips plus log forces.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/apps"
)

func main() {
	managers := flag.Int("managers", 3, "resource-manager CABs")
	txns := flag.Int("txns", 40, "transactions to run")
	keys := flag.Int("keys", 3, "keys written per transaction")
	flag.Parse()

	cfg := apps.DefaultTxnConfig()
	cfg.Managers = *managers
	cfg.Transactions = *txns
	cfg.KeysPerTxn = *keys

	sys := nectar.New(nectar.SingleHub(1 + cfg.Managers))
	res, err := apps.RunTransactions(sys, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("two-phase commit over %d resource managers:\n", cfg.Managers)
	fmt.Printf("  committed: %d   aborted: %d\n", res.Committed, res.Aborted)
	fmt.Printf("  commit latency p50: %v  p95: %v\n",
		res.CommitLatency.Median(), res.CommitLatency.Quantile(0.95))
	fmt.Printf("  throughput: %.0f txns/s\n", float64(res.Committed)/res.Elapsed.Seconds())
}

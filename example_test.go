package nectar_test

import (
	"fmt"

	"repro"
)

// ExampleNew builds the smallest useful Nectar system and sends one
// reliable message between CAB-resident threads.
func ExampleNew() {
	sys := nectar.New(nectar.SingleHub(2))

	rx := sys.CAB(1)
	inbox := rx.Kernel.NewMailbox("inbox", 64<<10)
	rx.TP.Register(1, inbox)
	rx.Kernel.Spawn("receiver", func(th *nectar.Thread) {
		msg := inbox.Get(th)
		fmt.Printf("received %q from CAB %d\n", msg.Bytes(), msg.Src)
		inbox.Release(msg)
	})

	sys.CAB(0).Kernel.Spawn("sender", func(th *nectar.Thread) {
		sys.CAB(0).TP.StreamSend(th, 1, 1, 0, []byte("hello, backplane"))
	})
	sys.Run()
	// Output: received "hello, backplane" from CAB 0
}

// ExampleNewApp shows Nectarine tasks with heterogeneous data conversion:
// a little-endian Warp sends typed words to a big-endian Sun; the receiver
// sees correct values because Nectarine converts representations.
func ExampleNewApp() {
	sys := nectar.New(nectar.SingleHub(2))
	app := nectar.NewApp(sys)

	app.NewCABTask("sun", 1, func(tc *nectar.TaskCtx) {
		m := tc.Recv()
		fmt.Println("sun received words:", wordsOf(m.Data))
	})
	app.NewCABTask("warp", 0, func(tc *nectar.TaskCtx) {
		tc.Send("sun", 0, nectar.Words([]uint32{7, 11, 13}, true))
	})
	app.Run()
	// Output: sun received words: [7 11 13]
}

// wordsOf decodes big-endian 32-bit words.
func wordsOf(data []byte) []uint32 {
	out := make([]uint32, 0, len(data)/4)
	for i := 0; i+3 < len(data); i += 4 {
		out = append(out, uint32(data[i])<<24|uint32(data[i+1])<<16|
			uint32(data[i+2])<<8|uint32(data[i+3]))
	}
	return out
}

// ExampleSystem_Run demonstrates that simulated time is virtual: a
// millisecond-scale protocol exchange completes instantly in wall time,
// and the clock reports the simulated duration.
func ExampleSystem_Run() {
	sys := nectar.New(nectar.SingleHub(2))
	sys.CAB(0).Kernel.Spawn("idle", func(th *nectar.Thread) {
		th.Sleep(5 * nectar.Millisecond)
	})
	end := sys.Run()
	fmt.Println("simulated time elapsed:", end >= 5*nectar.Millisecond)
	// Output: simulated time elapsed: true
}

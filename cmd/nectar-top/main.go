// nectar-top is the congestion observatory's console: it runs a mesh under
// a configurable congestion storm with the full observatory armed — flow
// accounting with the heavy-hitter sketch, per-port queue telemetry, span
// tracing — and prints who is talking to whom (top flows), where it hurts
// (the weathermap), and where the latency went (per-hop critical-path
// attribution of the p50/p99 request and the aggregate over the storm
// window).
//
// Usage:
//
//	nectar-top                     # 2x2 mesh, 3 CABs/HUB, 8ms, storm on
//	nectar-top -rows 1 -cols 2     # smaller fabric
//	nectar-top -storm=false        # just the background request traffic
//	nectar-top -json               # machine-readable report
//	nectar-top -out report.txt     # also write the report to a file (CI artifact)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hub"
	"repro/internal/kernel"
	"repro/internal/obs/flow"
	"repro/internal/obs/slo"
	"repro/internal/sim"
	"repro/internal/trace"
)

const reqBox = 0x42

// report is the -json shape.
type report struct {
	Config struct {
		Rows, Cols, Per int
		DurationMs      float64
		Storm           bool
		StormSrcs       []int `json:",omitempty"`
		StormDst        int
	}
	Flows      []flowRow         `json:"flows"`
	Top        []flow.TopEntry   `json:"top"`
	Weathermap *flow.Weathermap  `json:"weathermap"`
	P99        *pathReport       `json:"p99,omitempty"`
	P50        *pathReport       `json:"p50,omitempty"`
	Aggregate  []trace.PathSlice `json:"aggregate,omitempty"`
	Requests   int               `json:"requests"`

	SLO       []slo.ObjectiveStatus `json:"slo,omitempty"`
	SLOAlerts []slo.Alert           `json:"slo_alerts,omitempty"`
	Bundles   int                   `json:"slo_bundles,omitempty"`
}

type flowRow struct {
	Src, Dst, Proto            string
	Frames, Bytes, Retransmits int64
	QueueNs                    int64
}

type pathReport struct {
	TotalNs int64             `json:"total_ns"`
	Slices  []trace.PathSlice `json:"slices"`
}

func main() {
	rows := flag.Int("rows", 2, "mesh rows")
	cols := flag.Int("cols", 2, "mesh columns")
	per := flag.Int("per", 3, "CABs per HUB")
	durMs := flag.Float64("duration", 8, "simulated run length, ms")
	storm := flag.Bool("storm", true, "blast the last CAB from its hub-local neighbors mid-run")
	size := flag.Int("size", 512, "storm datagram payload bytes")
	k := flag.Int("k", 0, "heavy-hitter sketch size (0 = default)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	outPath := flag.String("out", "", "also write the report to this file")
	sloOn := flag.Bool("slo", false, "arm the SLO engine on the request traffic (p99 < -slobound) with tail-sampled tracing; adds status, the alert stream, and bundle capture to the report")
	sloBound := flag.Duration("slobound", 100*time.Microsecond, "SLO latency bound for -slo")
	sloDump := flag.String("slodump", "", "with -slo: write the first diagnosis bundle captured at alert time to this file as JSON")
	flag.Parse()

	opts := []core.Option{
		core.WithMetrics(),
		core.WithObservatory(),
		core.WithFlows(*k),
		core.WithSampler(20 * sim.Microsecond),
		func(p *core.Params) { p.TraceSpans = 400000 },
	}
	if *sloOn {
		opts = append(opts, core.WithSLO(slo.Params{Objectives: []slo.Objective{{
			Name: "reqresp", Kind: slo.KindReqResp, Class: slo.AnyClass,
			LatencyBound: sim.Time(sloBound.Nanoseconds()),
		}}}))
	}
	sys := core.New(core.Mesh(*rows, *cols, *per), opts...)
	n := sys.NumCABs()
	if n < 3 {
		fmt.Fprintln(os.Stderr, "need at least 3 CABs (one client, one victim, one blaster)")
		os.Exit(2)
	}
	victimID := n - 1
	victim := sys.CAB(victimID)
	horizon := sim.Time(*durMs * float64(sim.Millisecond))
	stormAt, stormDur := horizon/8, horizon/2

	// Request server on the victim, echoing 8 bytes back.
	srvBox := victim.Kernel.NewMailbox("top-srv", 1<<20)
	victim.TP.Register(reqBox, srvBox)
	victim.Kernel.SpawnDaemon("top-srv", func(th *kernel.Thread) {
		for {
			m := srvBox.Get(th)
			_ = victim.TP.Respond(th, m, m.Bytes()[:8])
			srvBox.Release(m)
		}
	})

	// Paced background client on CAB 0: one request every 100us, so the
	// span trace holds a steady stream of cross-fabric messages for the
	// critical-path post-processor.
	requests := 0
	client := sys.CAB(0)
	client.Kernel.SpawnDaemon("top-client", func(th *kernel.Thread) {
		payload := make([]byte, 64)
		for i := 0; ; i++ {
			next := sim.Time(i) * 100 * sim.Microsecond
			if now := sys.Eng.Now(); next > now {
				th.Sleep(next - now)
			}
			_, _ = client.TP.Request(th, victimID, reqBox, 1, payload)
			requests++
		}
	})

	// The storm: the victim's hub-local neighbors blast it with datagrams,
	// so all contention converges on its HUB's output register.
	var srcs []int
	if *storm {
		base := (victimID / *per) * *per
		for c := base; c < base+*per && len(srcs) < 2; c++ {
			if c != victimID && c != 0 {
				srcs = append(srcs, c)
			}
		}
		sink := victim.Kernel.NewMailbox("top-sink", 8<<20)
		victim.TP.Register(fault.StormBox, sink)
		victim.Kernel.SpawnDaemon("top-sink", func(th *kernel.Thread) {
			for {
				sink.Release(sink.Get(th))
			}
		})
		inj := fault.New(sys, fault.Scenario{Name: "top-storm", Actions: []fault.Action{
			fault.CongestionStorm{Srcs: srcs, Dst: victimID,
				At: stormAt, Duration: stormDur, Size: *size},
		}})
		inj.Schedule()
	}

	sys.RunUntil(horizon)
	sys.StopTelemetry()

	if *sloDump != "" {
		if bundles := sys.SLO.Bundles(); len(bundles) > 0 {
			if err := os.WriteFile(*sloDump, bundles[0].JSON(), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "slodump:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote diagnosis bundle to %s\n", *sloDump)
		} else {
			fmt.Fprintln(os.Stderr, "slodump: no alert fired, no bundle captured")
		}
	}

	// Post-process: client request roots inside the storm window (whole run
	// when the storm is off).
	lo, hi := stormAt, stormAt+stormDur
	if !*storm {
		lo, hi = 0, horizon
	}
	clientName := client.Board.Name()
	byRoot := trace.GroupByRoot(sys.Tr.Spans())
	var roots []*trace.Span
	for _, r := range sys.Tr.Roots() {
		if r.Comp() == clientName && r.Name() == "msg" &&
			r.Ended() && r.Start() >= lo && r.Start() <= hi {
			roots = append(roots, r)
		}
	}
	breakdown := func(q float64) *trace.PathBreakdown {
		return trace.CriticalPathIn(byRoot[trace.QuantileRoot(roots, q)],
			trace.QuantileRoot(roots, q), hub.TransferLatency)
	}
	p50, p99 := breakdown(0.50), breakdown(0.99)
	var all []*trace.PathBreakdown
	for _, r := range roots {
		all = append(all, trace.CriticalPathIn(byRoot[r], r, hub.TransferLatency))
	}
	agg := trace.AggregatePaths(all)
	weather := sys.Weathermap()

	if *jsonOut {
		rep := &report{}
		rep.Config.Rows, rep.Config.Cols, rep.Config.Per = *rows, *cols, *per
		rep.Config.DurationMs = *durMs
		rep.Config.Storm = *storm
		rep.Config.StormSrcs = srcs
		rep.Config.StormDst = victimID
		for _, r := range sys.Flows.Records() {
			rep.Flows = append(rep.Flows, flowRow{
				Src:    fmt.Sprintf("cab%d", r.Src),
				Dst:    dstLabel(r.Dst),
				Proto:  sys.Flows.ProtoName(r.Proto),
				Frames: r.Frames, Bytes: r.Bytes, Retransmits: r.Retransmits,
				QueueNs: int64(r.Queue),
			})
		}
		rep.Top = sys.Flows.Top()
		rep.Weathermap = weather
		rep.P50 = pathJSON(p50)
		rep.P99 = pathJSON(p99)
		rep.Aggregate = agg
		rep.Requests = requests
		if sys.SLO != nil {
			rep.SLO = sys.SLO.Status()
			rep.SLOAlerts = sys.SLO.Alerts()
			rep.Bundles = len(sys.SLO.Bundles())
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "encode:", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		os.Stdout.Write(blob)
		writeOut(*outPath, blob)
		return
	}

	var b strings.Builder
	fmt.Fprintf(&b, "nectar-top: %dx%d mesh, %d CABs/HUB, %d requests over %v\n",
		*rows, *cols, *per, requests, horizon)
	if *storm {
		fmt.Fprintf(&b, "storm: CABs %v -> cab%d, %v..%v, %dB datagrams\n",
			srcs, victimID, stormAt, stormAt+stormDur, *size)
	}
	b.WriteString("\n")
	b.WriteString(sys.Flows.Text(16))
	b.WriteString("\n")
	b.WriteString(weather.Text())
	b.WriteString("\n")
	if sys.SLO != nil {
		b.WriteString(sys.SLO.Text())
		fmt.Fprintf(&b, "tail sampling: %d/%d trees kept, %d spans retained, %d spans dropped, %d bundle(s)\n\n",
			sys.Tr.TailKept(), sys.Tr.TailRoots(), len(sys.Tr.Spans()),
			sys.Tr.TailSpansDropped(), len(sys.SLO.Bundles()))
	}
	if p99 != nil {
		fmt.Fprintf(&b, "p99 request %s", p99.String())
		fmt.Fprintf(&b, "p50 request %s", p50.String())
		fmt.Fprintf(&b, "aggregate over %d requests in the window:\n", len(all))
		var total sim.Time
		for _, pb := range all {
			total += pb.Total
		}
		for _, s := range agg {
			pct := float64(0)
			if total > 0 {
				pct = 100 * float64(s.Time) / float64(total)
			}
			fmt.Fprintf(&b, "  %-16s %-12s %12v  %5.1f%%\n", s.Comp, s.Kind, s.Time, pct)
		}
	} else {
		b.WriteString("no traced requests completed in the window\n")
	}
	os.Stdout.WriteString(b.String())
	writeOut(*outPath, []byte(b.String()))
}

func dstLabel(d uint16) string {
	if d == flow.McastDst {
		return "*"
	}
	return fmt.Sprintf("cab%d", d)
}

func pathJSON(p *trace.PathBreakdown) *pathReport {
	if p == nil {
		return nil
	}
	return &pathReport{TotalNs: int64(p.Total), Slices: p.Slices}
}

func writeOut(path string, blob []byte) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote report to %s\n", path)
}

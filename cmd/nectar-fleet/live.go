package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/sim"
)

// liveFleet is the -listen endpoint: a snapshot of every running replica,
// scrapeable mid-run.
//
//	GET /metrics     fleet-wide progress (ops, errors, bytes, simulated
//	                 time) with one sample per replica — valid Prometheus
//	                 text exposition.
//	GET /metrics/N   replica N's full exposition: its trace.Registry plus
//	                 the latest sampler readings.
//	GET /slo         with -slo: every replica's SLO status and alert
//	                 stream, concatenated (plain text).
//	GET /slo/N       replica N's SLO view alone.
//
// Each replica renders its own exposition inside its single-threaded
// engine goroutine (a load.Config.OnTick callback) and publishes the bytes
// through an atomic.Value; HTTP handlers only read published values, so
// the simulations stay deterministic and race-free.
type liveFleet struct {
	baseSeed int64
	blobs    []atomic.Value // []byte: full per-replica exposition
	ticks    []atomic.Value // load.Tick: latest progress
	sloBlobs []atomic.Value // []byte: per-replica SLO status + alert stream
}

func newLiveFleet(replicas int, baseSeed int64) *liveFleet {
	return &liveFleet{
		baseSeed: baseSeed,
		blobs:    make([]atomic.Value, replicas),
		ticks:    make([]atomic.Value, replicas),
		sloBlobs: make([]atomic.Value, replicas),
	}
}

// publish installs replica i's freshly rendered exposition and progress.
func (lf *liveFleet) publish(i int, tk load.Tick, blob []byte) {
	lf.ticks[i].Store(tk)
	lf.blobs[i].Store(blob)
}

// publishSLO installs replica i's rendered SLO view.
func (lf *liveFleet) publishSLO(i int, blob []byte) {
	lf.sloBlobs[i].Store(blob)
}

func (lf *liveFleet) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	const prefix = "/metrics"
	path := strings.TrimSuffix(r.URL.Path, "/")
	if path == "" || path == prefix {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(lf.progressExposition())
		return
	}
	if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
		i, err := strconv.Atoi(rest)
		if err != nil || i < 0 || i >= len(lf.blobs) {
			http.Error(w, fmt.Sprintf("replica index out of range 0..%d", len(lf.blobs)-1), http.StatusNotFound)
			return
		}
		blob, _ := lf.blobs[i].Load().([]byte)
		if blob == nil {
			http.Error(w, "replica has not published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(blob)
		return
	}
	if path == "/slo" {
		var b bytes.Buffer
		published := 0
		for i := range lf.sloBlobs {
			blob, _ := lf.sloBlobs[i].Load().([]byte)
			if blob == nil {
				continue
			}
			published++
			b.Write(blob)
			b.WriteByte('\n')
		}
		if published == 0 {
			http.Error(w, "no replica has published an SLO view yet (is -slo set?)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(b.Bytes())
		return
	}
	if rest, ok := strings.CutPrefix(path, "/slo/"); ok {
		i, err := strconv.Atoi(rest)
		if err != nil || i < 0 || i >= len(lf.sloBlobs) {
			http.Error(w, fmt.Sprintf("replica index out of range 0..%d", len(lf.sloBlobs)-1), http.StatusNotFound)
			return
		}
		blob, _ := lf.sloBlobs[i].Load().([]byte)
		if blob == nil {
			http.Error(w, "replica has not published an SLO view yet (is -slo set?)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(blob)
		return
	}
	http.NotFound(w, r)
}

// progressExposition renders per-replica progress, grouped by metric
// family so the whole page is one valid exposition.
func (lf *liveFleet) progressExposition() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# TYPE %s gauge\n", obs.PromName("fleet_replicas"))
	obs.WriteSample(&b, "fleet_replicas", float64(len(lf.ticks)))
	families := []struct {
		name string
		typ  string
		get  func(load.Tick) float64
	}{
		{"fleet_sim_time_seconds", "gauge", func(t load.Tick) float64 { return t.Now.Seconds() }},
		{"fleet_ops", "counter", func(t load.Tick) float64 { return float64(t.Ops) }},
		{"fleet_errors", "counter", func(t load.Tick) float64 { return float64(t.Errors) }},
		{"fleet_shed", "counter", func(t load.Tick) float64 { return float64(t.Shed) }},
		{"fleet_bytes", "counter", func(t load.Tick) float64 { return float64(t.Bytes) }},
	}
	for _, fam := range families {
		fmt.Fprintf(&b, "# TYPE %s %s\n", obs.PromName(fam.name), fam.typ)
		for i := range lf.ticks {
			tk, ok := lf.ticks[i].Load().(load.Tick)
			if !ok {
				continue // not published yet
			}
			obs.WriteSample(&b, fam.name, fam.get(tk),
				obs.Label{Key: "replica", Value: strconv.Itoa(i)},
				obs.Label{Key: "seed", Value: strconv.FormatInt(lf.baseSeed+int64(i), 10)})
		}
	}
	return b.Bytes()
}

// serve binds addr and serves the endpoint for the life of the process.
// It returns the bound address (useful with ":0").
func (lf *liveFleet) serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, lf)
	}()
	return ln.Addr().String(), nil
}

// liveTickEvery is how often each replica publishes (simulated time).
const liveTickEvery = sim.Millisecond

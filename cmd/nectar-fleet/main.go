// Command nectar-fleet drives a fleet of independent Nectar replicas at
// saturation and reports aggregate throughput and latency, plus a
// head-to-head micro-benchmark of the event engine against the preserved
// baseline implementation.
//
// Each replica is one complete simulated Nectar system (its own engine,
// HUB, CABs, and software stacks) running the deterministic workload of
// internal/load under its own seed. Replicas share nothing, so the fleet
// shards them across GOMAXPROCS OS threads while every simulation stays
// single-threaded and deterministic: the same seed always produces the
// same per-replica digest, which -verify double-runs and compares (CI
// keys off the exit status).
//
// Results land in BENCH_fleet.json (override with -o).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/obs/slo"
	"repro/internal/sim"
	"repro/internal/sim/baseline"
	"repro/internal/trace"
)

const fnvOffset, fnvPrime = 0xcbf29ce484222325, 0x100000001b3

// replicaReport is one replica's measured slice of the fleet.
type replicaReport struct {
	Seed      int64   `json:"seed"`
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	Shed      int64   `json:"shed"`
	Bytes     int64   `json:"bytes"`
	CollSteps int64   `json:"coll_steps,omitempty"`
	Events    uint64  `json:"engine_events"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
	SLOAlerts int64   `json:"slo_alerts,omitempty"`
	Digest    string  `json:"digest"`
}

// engineReport is the event-engine micro-benchmark: the current 4-ary
// pooled heap versus the preserved container/heap baseline on the same
// schedule-and-fire churn loop.
type engineReport struct {
	EventsPerSec         float64 `json:"events_per_sec"`
	BaselineEventsPerSec float64 `json:"baseline_events_per_sec"`
	Speedup              float64 `json:"speedup"`
	AllocsPerEvent       float64 `json:"allocs_per_event"`
	BaselineAllocsPerEvt float64 `json:"baseline_allocs_per_event"`
}

type fleetReport struct {
	Config struct {
		Replicas   int     `json:"replicas"`
		CABs       int     `json:"cabs_per_replica"`
		Workers    int     `json:"workers_per_cab"`
		Mode       string  `json:"mode"`
		RatePerCAB float64 `json:"rate_per_cab,omitempty"`
		Zipf       float64 `json:"zipf_s,omitempty"`
		DurationMs float64 `json:"duration_ms"`
		BaseSeed   int64   `json:"base_seed"`
		Threads    int     `json:"gomaxprocs"`
		BSPSteps   int     `json:"bsp_supersteps,omitempty"`
	} `json:"config"`
	Engine   engineReport    `json:"engine"`
	Replicas []replicaReport `json:"replicas"`
	Total    struct {
		Ops            int64   `json:"ops"`
		Errors         int64   `json:"errors"`
		Shed           int64   `json:"shed"`
		Bytes          int64   `json:"bytes"`
		CollSteps      int64   `json:"coll_steps"`
		Events         uint64  `json:"engine_events"`
		OpsPerSec      float64 `json:"ops_per_sec"`
		MBps           float64 `json:"mbps"`
		P50us          float64 `json:"p50_us"`
		P95us          float64 `json:"p95_us"`
		P99us          float64 `json:"p99_us"`
		MaxUs          float64 `json:"max_us"`
		WallSeconds    float64 `json:"wall_seconds"`
		EventsPerWallS float64 `json:"events_per_wall_sec"`
		SLOAlerts      int64   `json:"slo_alerts,omitempty"`
		Digest         string  `json:"digest"`
	} `json:"total"`
	Verified bool `json:"verified"`
}

func us(t sim.Time) float64 { return float64(t) / 1e3 }

// churn is the contended scheduling loop both engines are measured on:
// 64 events in flight, firing in small batches — the shape of a busy
// simulated network (timers, DMA completions, packet arrivals).
func churnNew(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.After(sim.Time(j%7+1), func() {})
		}
		e.RunUntil(e.Now() + 8)
	}
	e.Run()
}

func churnBaseline(b *testing.B) {
	b.ReportAllocs()
	e := baseline.NewEngine()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.After(sim.Time(j%7+1), func() {})
		}
		e.RunUntil(e.Now() + 8)
	}
	e.Run()
}

func benchEngines() engineReport {
	cur := testing.Benchmark(churnNew)
	old := testing.Benchmark(churnBaseline)
	perSec := func(r testing.BenchmarkResult) float64 {
		if r.NsPerOp() == 0 {
			return 0
		}
		return 64 * 1e9 / float64(r.NsPerOp()) // 64 events per iteration
	}
	rep := engineReport{
		EventsPerSec:         perSec(cur),
		BaselineEventsPerSec: perSec(old),
		AllocsPerEvent:       float64(cur.AllocsPerOp()) / 64,
		BaselineAllocsPerEvt: float64(old.AllocsPerOp()) / 64,
	}
	if rep.BaselineEventsPerSec > 0 {
		rep.Speedup = rep.EventsPerSec / rep.BaselineEventsPerSec
	}
	return rep
}

// replicaRun holds one replica's raw results for aggregation.
type replicaRun struct {
	res    *load.Result
	events uint64
	alerts int64 // SLO alerts fired (with -slo)
}

func main() {
	replicas := flag.Int("replicas", runtime.GOMAXPROCS(0), "independent replicas to run")
	cabs := flag.Int("cabs", 8, "CABs per replica (single HUB)")
	workers := flag.Int("workers", 2, "closed-loop client threads per CAB")
	durMs := flag.Float64("duration", 20, "measured window per replica, simulated ms")
	mode := flag.String("mode", "closed", "arrival mode: closed or open")
	rate := flag.Float64("rate", 20000, "open-loop arrivals per CAB per simulated second")
	zipf := flag.Float64("zipf", 0, "zipf s parameter for destination skew (0 = uniform, else > 1)")
	seed := flag.Int64("seed", 1, "base seed; replica i runs seed+i")
	short := flag.Bool("short", false, "small quick run (CI smoke): 5ms windows")
	verify := flag.Bool("verify", false, "run every seed twice and fail on digest mismatch")
	bsp := flag.Int("bsp", 64, "add one collective-mix replica running this many BSP supersteps (0 disables)")
	noBench := flag.Bool("nobench", false, "skip the engine micro-benchmark")
	out := flag.String("o", "BENCH_fleet.json", "output JSON path")
	listen := flag.String("listen", "", "serve live Prometheus metrics on this address while running (e.g. :9464)")
	sloOn := flag.Bool("slo", false, "arm the SLO engine on every replica (latency objectives per operation kind at -slobound); adds per-replica alert counts to the report and, with -listen, /slo and /slo/N status endpoints")
	sloBound := flag.Duration("slobound", 500*time.Microsecond, "SLO latency bound for -slo")
	latcap := flag.Int("latcap", 65536, "cap per-replica latency histogram memory at this many samples (deterministic decimation beyond it; 0 = unbounded)")
	flag.Parse()

	if *short {
		*durMs = 5
	}
	if *replicas < 1 {
		*replicas = 1
	}
	// The collective-mix replica runs the standard mix plus BSP supersteps
	// on the collective subsystem, so -verify also covers barrier/allreduce
	// traffic (including the HUB-multicast path) with its digest check.
	total := *replicas
	if *bsp > 0 {
		total++
	}

	cfg := load.Config{
		Workers:    *workers,
		Duration:   sim.Time(*durMs * float64(sim.Millisecond)),
		Warmup:     sim.Time(*durMs * float64(sim.Millisecond) / 10),
		RatePerCAB: *rate,
		ZipfS:      *zipf,
		LatencyCap: *latcap,
	}
	if *mode == "open" {
		cfg.Arrival = load.OpenLoop
	}

	// With -listen, each replica carries the continuous-telemetry plane
	// (metrics registry + sampler) and publishes a fresh exposition every
	// simulated millisecond; without it, replicas run bare as before.
	var live *liveFleet
	if *listen != "" {
		live = newLiveFleet(total, *seed)
		addr, err := live.serve(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "listen:", err)
			os.Exit(2)
		}
		fmt.Printf("fleet: live metrics on http://%s/metrics (per replica: /metrics/0..%d)\n",
			addr, total-1)
	}

	runReplica := func(idx int, s int64) replicaRun {
		var opts []core.Option
		if live != nil {
			opts = append(opts, core.WithMetrics(), core.WithSampler(0), core.WithFlows(0))
		}
		if *sloOn {
			bound := sim.Time(sloBound.Nanoseconds())
			opts = append(opts, core.WithSLO(slo.Params{Objectives: []slo.Objective{
				{Name: "reqresp", Kind: slo.KindReqResp, Class: slo.AnyClass, LatencyBound: bound},
				{Name: "stream", Kind: slo.KindStream, Class: slo.AnyClass, LatencyBound: bound},
				{Name: "vmtp", Kind: slo.KindVMTP, Class: slo.AnyClass, LatencyBound: bound},
			}}))
		}
		sys := core.New(core.SingleHub(*cabs), opts...)
		c := cfg
		c.Seed = s
		if *bsp > 0 && idx == *replicas {
			// The collective replica models an application doing RPCs plus
			// BSP supersteps; the default mix's 16 KiB bulk streams would
			// saturate the hub and starve the collectives entirely.
			c.BSPSupersteps = *bsp
			c.Mix = load.Mix{ReqResp: 1}
		}
		if live != nil {
			labels := []obs.Label{
				{Key: "replica", Value: strconv.Itoa(idx)},
				{Key: "seed", Value: strconv.FormatInt(s, 10)},
			}
			c.TickEvery = liveTickEvery
			c.OnTick = func(tk load.Tick) {
				var b bytes.Buffer
				_ = obs.WriteProm(&b, sys.Reg.Snapshot(), labels...)
				obs.WriteSamplerProm(&b, sys.Sampler, labels...)
				sys.Flows.WriteProm(&b, labels...)
				live.publish(idx, tk, b.Bytes())
				if sys.SLO != nil {
					live.publishSLO(idx, []byte(fmt.Sprintf("replica %d (seed %d) at %v\n%s",
						idx, s, tk.Now, sys.SLO.Text())))
				}
			}
		}
		res := load.Run(sys, c)
		out := replicaRun{res: res, events: sys.Eng.Executed()}
		if sys.SLO != nil {
			out.alerts = sys.SLO.AlertCount()
			if live != nil {
				live.publishSLO(idx, []byte(fmt.Sprintf("replica %d (seed %d) final\n%s",
					idx, s, sys.SLO.Text())))
			}
		}
		return out
	}

	// Shard replicas (and verification re-runs) across GOMAXPROCS
	// goroutines. Replica i's results land at index i, so aggregation
	// order is deterministic no matter how the shards interleave.
	rounds := 1
	if *verify {
		rounds = 2
	}
	runs := make([]replicaRun, total*rounds)
	var wg sync.WaitGroup
	slots := make(chan struct{}, runtime.GOMAXPROCS(0))
	wallStart := time.Now()
	for i := range runs {
		i := i
		wg.Add(1)
		slots <- struct{}{}
		go func() {
			defer func() { <-slots; wg.Done() }()
			idx := i % total
			runs[i] = runReplica(idx, *seed+int64(idx))
		}()
	}
	wg.Wait()
	wall := time.Since(wallStart)

	rep := &fleetReport{}
	rep.Config.Replicas = *replicas
	rep.Config.CABs = *cabs
	rep.Config.Workers = *workers
	rep.Config.Mode = *mode
	if *mode == "open" {
		rep.Config.RatePerCAB = *rate
	}
	rep.Config.Zipf = *zipf
	rep.Config.DurationMs = *durMs
	rep.Config.BaseSeed = *seed
	rep.Config.Threads = runtime.GOMAXPROCS(0)
	rep.Config.BSPSteps = *bsp

	mismatch := false
	merged := trace.NewHistogram("fleet op latency")
	combined := uint64(fnvOffset)
	for i := 0; i < total; i++ {
		r := runs[i]
		rr := replicaReport{
			Seed:      *seed + int64(i),
			Ops:       r.res.Ops,
			Errors:    r.res.Errors,
			Shed:      r.res.Shed,
			Bytes:     r.res.Bytes,
			CollSteps: r.res.CollSteps,
			Events:    r.events,
			OpsPerSec: r.res.OpsPerSec(),
			P50us:     us(r.res.Latency.Median()),
			P99us:     us(r.res.Latency.Quantile(0.99)),
			SLOAlerts: r.alerts,
			Digest:    fmt.Sprintf("%016x", r.res.Digest),
		}
		if *verify {
			twin := runs[total+i]
			if twin.res.Digest != r.res.Digest || twin.events != r.events {
				mismatch = true
				fmt.Fprintf(os.Stderr, "DETERMINISM FAILURE: seed %d produced digest %016x then %016x\n",
					rr.Seed, r.res.Digest, twin.res.Digest)
			}
		}
		rep.Replicas = append(rep.Replicas, rr)
		rep.Total.Ops += r.res.Ops
		rep.Total.Errors += r.res.Errors
		rep.Total.Shed += r.res.Shed
		rep.Total.Bytes += r.res.Bytes
		rep.Total.CollSteps += r.res.CollSteps
		rep.Total.Events += r.events
		rep.Total.SLOAlerts += r.alerts
		merged.Merge(r.res.Latency)
		// Fold per-replica digests in seed order: the combined digest is
		// independent of scheduling and of GOMAXPROCS.
		for b := 0; b < 8; b++ {
			combined = (combined ^ (r.res.Digest >> (8 * b) & 0xff)) * fnvPrime
		}
	}
	// Replicas are concurrent machines: aggregate rate is total work over
	// one replica's measured window of simulated time.
	window := sim.Time(*durMs * float64(sim.Millisecond)).Seconds()
	if window > 0 {
		rep.Total.OpsPerSec = float64(rep.Total.Ops) / window
		rep.Total.MBps = float64(rep.Total.Bytes) / window / 1e6
	}
	rep.Total.P50us = us(merged.Median())
	rep.Total.P95us = us(merged.Quantile(0.95))
	rep.Total.P99us = us(merged.Quantile(0.99))
	rep.Total.MaxUs = us(merged.Max())
	rep.Total.WallSeconds = wall.Seconds()
	if wall > 0 {
		rep.Total.EventsPerWallS = float64(rep.Total.Events) * float64(rounds) / wall.Seconds()
	}
	rep.Total.Digest = fmt.Sprintf("%016x", combined)
	rep.Verified = *verify && !mismatch

	if !*noBench {
		rep.Engine = benchEngines()
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode:", err)
		os.Exit(2)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(2)
	}

	fmt.Printf("fleet: %d replicas x %d CABs (%s loop), %.0fms windows on %d threads\n",
		total, *cabs, *mode, *durMs, rep.Config.Threads)
	fmt.Printf("  %d ops (%d errors, %d shed), %.0f ops/s, %.1f MB/s aggregate\n",
		rep.Total.Ops, rep.Total.Errors, rep.Total.Shed, rep.Total.OpsPerSec, rep.Total.MBps)
	if rep.Total.CollSteps > 0 {
		fmt.Printf("  %d BSP supersteps in the collective-mix replica\n", rep.Total.CollSteps)
	}
	fmt.Printf("  latency p50 %.1fus  p95 %.1fus  p99 %.1fus  max %.1fus\n",
		rep.Total.P50us, rep.Total.P95us, rep.Total.P99us, rep.Total.MaxUs)
	if *sloOn {
		fmt.Printf("  slo: %d alert(s) across the fleet at bound %v\n", rep.Total.SLOAlerts, *sloBound)
	}
	fmt.Printf("  %d engine events in %.2fs wall = %.2fM events/s\n",
		rep.Total.Events*uint64(rounds), rep.Total.WallSeconds, rep.Total.EventsPerWallS/1e6)
	if !*noBench {
		fmt.Printf("  engine: %.1fM events/s vs baseline %.1fM (%.1fx), %.2f allocs/event (baseline %.2f)\n",
			rep.Engine.EventsPerSec/1e6, rep.Engine.BaselineEventsPerSec/1e6,
			rep.Engine.Speedup, rep.Engine.AllocsPerEvent, rep.Engine.BaselineAllocsPerEvt)
	}
	fmt.Printf("  fleet digest %s -> %s\n", rep.Total.Digest, *out)
	if *verify {
		if mismatch {
			fmt.Println("  VERIFY: FAILED — nondeterministic replica digests")
			os.Exit(1)
		}
		fmt.Println("  VERIFY: every seed reproduced its digest")
	}
}

// nectar-trace runs a small scenario with the instrumentation board
// enabled (paper §4.1: "an additional instrumentation board can be plugged
// into the backplane... it can monitor and record events related to the
// crossbar and its controller") and dumps the recorded event stream:
// connection opens/closes, command executions, packet movements, replies.
//
// Usage:
//
//	nectar-trace                  # circuit-switched send, one HUB
//	nectar-trace -mode packet     # packet-switched send
//	nectar-trace -mode multicast  # multicast over two HUBs
//	nectar-trace -limit 200       # retain more events
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "circuit", "circuit | packet | multicast")
	limit := flag.Int("limit", 100, "max retained events")
	size := flag.Int("size", 128, "payload bytes")
	flag.Parse()

	params := core.DefaultParams()
	params.RecorderLimit = *limit

	var sys *core.System
	switch *mode {
	case "multicast":
		sys = core.NewLine(2, 2, params)
	default:
		sys = core.NewSingleHub(4, params)
	}

	for i := 1; i < sys.NumCABs(); i++ {
		st := sys.CAB(i)
		st.DL.SetReceiver(func(p []byte) {
			fmt.Printf("-- CAB %d datalink delivered %d bytes at %v\n",
				st.Board.ID(), len(p), st.Kernel.Engine().Now())
		})
	}

	tx := sys.CAB(0)
	tx.Kernel.Spawn("tx", func(th *kernel.Thread) {
		var err error
		switch *mode {
		case "circuit":
			err = tx.DL.SendCircuit(th, 1, make([]byte, *size))
		case "packet":
			err = tx.DL.SendPacket(th, 1, make([]byte, *size))
		case "multicast":
			err = tx.DL.SendMulticastCircuit(th, []int{1, 2, 3}, make([]byte, *size))
		default:
			fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	})
	sys.Run()

	fmt.Printf("\ninstrumentation board event log (%s send):\n", *mode)
	fmt.Print(sys.Rec.Dump())
	fmt.Printf("\nevent counts: conn-open=%d conn-close=%d command=%d packet-out=%d reply=%d drops=%d\n",
		sys.Rec.Count(trace.EvConnOpen), sys.Rec.Count(trace.EvConnClose),
		sys.Rec.Count(trace.EvCommand), sys.Rec.Count(trace.EvPacketOut),
		sys.Rec.Count(trace.EvReply), sys.Rec.Count(trace.EvPacketDrop))
}

// nectar-trace runs a small scenario with the instrumentation board
// enabled (paper §4.1: "an additional instrumentation board can be plugged
// into the backplane... it can monitor and record events related to the
// crossbar and its controller") and dumps the recorded event stream:
// connection opens/closes, command executions, packet movements, replies.
//
// With span tracing it also follows each message end-to-end across the
// layers (kernel, transport, datalink, DMA, HUB, fiber), prints the
// per-layer latency breakdown, and can export the spans as Chrome
// trace-event JSON (load it in chrome://tracing or https://ui.perfetto.dev).
//
// Usage:
//
//	nectar-trace                  # request-response exchange, one HUB
//	nectar-trace -mode circuit    # circuit-switched datalink send
//	nectar-trace -mode packet     # packet-switched datalink send
//	nectar-trace -mode multicast  # multicast over two HUBs
//	nectar-trace -limit 200       # retain more events
//	nectar-trace -out trace.json  # write Chrome trace-event JSON
//	nectar-trace -metrics         # print the metrics registry snapshot
//	nectar-trace -prom            # print the registry as Prometheus text
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	mode := flag.String("mode", "reqresp", "reqresp | circuit | packet | multicast")
	limit := flag.Int("limit", 100, "max retained events")
	size := flag.Int("size", 128, "payload bytes")
	out := flag.String("out", "", "write spans as Chrome trace-event JSON to this file")
	metrics := flag.Bool("metrics", false, "print the metrics registry snapshot")
	prom := flag.Bool("prom", false, "print the metrics registry as Prometheus text exposition")
	flag.Parse()

	switch *mode {
	case "reqresp", "circuit", "packet", "multicast":
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (want reqresp, circuit, packet, or multicast)\n", *mode)
		os.Exit(2)
	}

	params := core.DefaultParams()
	params.RecorderLimit = *limit
	params.TraceSpans = 4096
	params.Metrics = true

	var sys *core.System
	if *mode == "multicast" {
		sys = core.New(core.Line(2, 2), core.WithParams(params))
	} else {
		sys = core.New(core.SingleHub(4), core.WithParams(params))
	}

	if *mode != "reqresp" {
		// Raw datalink modes: replace the transport receiver with a
		// delivery printer (reqresp needs the real transport in place).
		for i := 1; i < sys.NumCABs(); i++ {
			st := sys.CAB(i)
			st.DL.SetReceiver(func(p []byte, _ *trace.Span) {
				fmt.Printf("-- CAB %d datalink delivered %d bytes at %v\n",
					st.Board.ID(), len(p), st.Kernel.Engine().Now())
			})
		}
	}

	tx := sys.CAB(0)
	switch *mode {
	case "reqresp":
		// A full transport-level request-response exchange: the server
		// echoes the request back. This exercises every layer in both
		// directions, so the span trace covers the complete round trip.
		srv := sys.CAB(1)
		mb := srv.Kernel.NewMailbox("srv", 1024*1024)
		srv.TP.Register(1, mb)
		srv.Kernel.Spawn("server", func(th *kernel.Thread) {
			req := mb.Get(th)
			data := req.Bytes()
			mb.Release(req)
			srv.TP.Respond(th, req, data)
		})
		tx.Kernel.Spawn("client", func(th *kernel.Thread) {
			t0 := th.Proc().Now()
			resp, err := tx.TP.Request(th, 1, 1, 2, make([]byte, *size))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("-- CAB 0 got %d-byte response, round trip %v\n",
				len(resp), th.Proc().Now()-t0)
		})
	case "circuit", "packet", "multicast":
		tx.Kernel.Spawn("tx", func(th *kernel.Thread) {
			var err error
			switch *mode {
			case "circuit":
				err = tx.DL.SendCircuit(th, 1, make([]byte, *size))
			case "packet":
				err = tx.DL.SendPacket(th, 1, make([]byte, *size))
			case "multicast":
				err = tx.DL.SendMulticastCircuit(th, []int{1, 2, 3}, make([]byte, *size))
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		})
	}
	sys.Run()

	fmt.Printf("\ninstrumentation board event log (%s send):\n", *mode)
	fmt.Print(sys.Rec.Dump())
	fmt.Printf("\nevent counts: conn-open=%d conn-close=%d command=%d packet-out=%d reply=%d drops=%d\n",
		sys.Rec.Count(trace.EvConnOpen), sys.Rec.Count(trace.EvConnClose),
		sys.Rec.Count(trace.EvCommand), sys.Rec.Count(trace.EvPacketOut),
		sys.Rec.Count(trace.EvReply), sys.Rec.Count(trace.EvPacketDrop))

	if spans := sys.Tr.Spans(); len(spans) > 0 {
		fmt.Printf("\nper-layer span breakdown (%d spans, %d dropped):\n", len(spans), sys.Tr.Dropped())
		t := trace.NewTable("", "layer", "spans", "total", "busy (merged)")
		for _, st := range trace.Breakdown(spans) {
			t.AddRow(st.Layer, st.Spans, st.Total, st.Busy)
		}
		fmt.Print(t.String())
	}

	if *metrics {
		fmt.Printf("\nmetrics registry snapshot:\n%s", sys.Reg.Text())
	}

	if *prom {
		fmt.Println()
		if err := obs.WriteProm(os.Stdout, sys.Reg.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sys.Tr.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace-event JSON to %s (open in chrome://tracing or ui.perfetto.dev)\n", *out)
	}
}

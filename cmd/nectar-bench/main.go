// nectar-bench regenerates every table and figure of the paper's
// evaluation (the experiment index E1-E12/F1 of DESIGN.md) and prints
// paper-vs-measured tables.
//
// Usage:
//
//	nectar-bench            # run every experiment
//	nectar-bench E5 E11     # run selected experiments (by ID or name)
//	nectar-bench -list      # list experiments
//	nectar-bench -json E8   # machine-readable results on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

// jsonTable and jsonResult mirror exp.Result for machine consumption
// (dashboards, CI trend checks) without freezing the internal types.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonResult struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Pass   bool        `json:"pass"`
	Tables []jsonTable `json:"tables"`
	Notes  []string    `json:"notes,omitempty"`
}

func toJSON(r *exp.Result) jsonResult {
	out := jsonResult{ID: r.ID, Title: r.Title, Pass: r.Pass, Notes: r.Notes}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, jsonTable{
			Title:   t.Title(),
			Headers: t.Headers(),
			Rows:    t.Rows(),
		})
	}
	return out
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	asJSON := flag.Bool("json", false, "emit results as a JSON array on stdout")
	collOut := flag.String("collout", "", "write the C1 collective sweep as JSON to this path (e.g. BENCH_coll.json)")
	scaleOut := flag.String("scaleout", "", "write the S1 scale-out sweep as JSON to this path (e.g. BENCH_scale.json)")
	full := flag.Bool("full", false, "run the full (slow) sweep ladders; the default is the short mode CI uses (S1 tops out at 1024 CABs)")
	flag.Parse()
	exp.BenchCollPath = *collOut
	exp.BenchScalePath = *scaleOut
	exp.S1Full = *full

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Name)
		}
		return
	}

	selected := exp.All()
	if args := flag.Args(); len(args) > 0 {
		selected = nil
		for _, a := range args {
			e, ok := exp.ByID(a)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", a)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	var results []jsonResult
	for _, e := range selected {
		res := e.Run()
		if *asJSON {
			results = append(results, toJSON(res))
		} else {
			fmt.Println(res)
		}
		if !res.Pass {
			failures++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, "encode:", err)
			os.Exit(2)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) did not reproduce the paper's shape\n", failures)
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Println("all experiments reproduce the paper's claims")
	}
}

// nectar-bench regenerates every table and figure of the paper's
// evaluation (the experiment index E1-E12/F1 of DESIGN.md) and prints
// paper-vs-measured tables.
//
// Usage:
//
//	nectar-bench            # run every experiment
//	nectar-bench E5 E11     # run selected experiments (by ID or name)
//	nectar-bench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Name)
		}
		return
	}

	selected := exp.All()
	if args := flag.Args(); len(args) > 0 {
		selected = nil
		for _, a := range args {
			e, ok := exp.ByID(a)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", a)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failures := 0
	for _, e := range selected {
		res := e.Run()
		fmt.Println(res)
		if !res.Pass {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) did not reproduce the paper's shape\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments reproduce the paper's claims")
}

// nectar-sim is a flag-driven scenario runner: build a topology, run a
// message workload over a chosen transport, and print latency/throughput
// statistics plus per-layer counters.
//
// Examples:
//
//	nectar-sim -topo single -cabs 4 -msgs 100 -size 1024
//	nectar-sim -topo mesh -rows 3 -cols 3 -per 1 -transport stream -size 65536
//	nectar-sim -topo line -hubs 4 -per 1 -ber 1e-5 -transport stream
//	nectar-sim -chaos linkflap -seed 7
//	nectar-sim -chaos random -seed 42 -msgs 30
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fiber"
	"repro/internal/kernel"
	"repro/internal/obs/slo"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	var (
		topoKind  = flag.String("topo", "single", "topology: single | line | mesh")
		cabs      = flag.Int("cabs", 4, "CABs (single topology)")
		hubs      = flag.Int("hubs", 3, "HUBs (line topology)")
		rows      = flag.Int("rows", 2, "mesh rows")
		cols      = flag.Int("cols", 2, "mesh cols")
		per       = flag.Int("per", 2, "CABs per HUB (line/mesh)")
		transport = flag.String("transport", "datagram", "datagram | stream | reqresp")
		msgs      = flag.Int("msgs", 50, "messages per sender")
		size      = flag.Int("size", 256, "message size in bytes")
		ber       = flag.Float64("ber", 0, "fiber bit error rate (per byte)")
		senders   = flag.Int("senders", 1, "concurrent sending CABs (all target CAB 0)")
		chaos     = flag.String("chaos", "", "chaos scenario: linkflap | corruption | portstuck | crash | storm | overload | comb | random (runs a fault-injected mesh; exits 1 on any undelivered message, for overload on a critical-class SLO violation, or for comb on any inexact collective result)")
		seed      = flag.Int64("seed", 1, "chaos scenario seed (runs are byte-reproducible per seed)")
		dump      = flag.String("dump", "", "chaos only: also write the flight-recorder post-mortem to this file")
		listen    = flag.String("listen", "", "serve Prometheus metrics on this address during the run, then keep serving the final snapshot until interrupted")
		sloOn     = flag.Bool("slo", false, "arm the SLO engine with a latency objective on the workload (see -slobound) and print status, burn rates, and the alert stream")
		sloBound  = flag.Duration("slobound", 500*time.Microsecond, "SLO latency bound for -slo")
		sloDump   = flag.String("slodump", "", "with -slo: write the first diagnosis bundle captured at alert time to this file as JSON")
	)
	flag.Parse()

	if *chaos == "comb" {
		os.Exit(runCombChaos(*seed, *rows, *cols, *msgs, *dump))
	}
	if *chaos != "" {
		os.Exit(runChaos(*chaos, *seed, *rows, *cols, *msgs, *dump))
	}

	params := core.DefaultParams()
	if *ber > 0 {
		params.Topo.Errors = fiber.ErrorModel{BitErrorRate: *ber, Seed: 1}
	}
	if *listen != "" {
		params.Metrics = true
		params.FlowTopK = core.DefaultFlowTopK
	}

	opts := []core.Option{core.WithParams(params)}
	if *sloOn {
		// One objective per reliable operation kind at the declared bound;
		// only the kinds the workload exercises accumulate ops. Datagrams
		// are unreliable by contract and carry no objective.
		bound := sim.Time(sloBound.Nanoseconds())
		opts = append(opts, core.WithMetrics(), core.WithSLO(slo.Params{
			Objectives: []slo.Objective{
				{Name: "reqresp", Kind: slo.KindReqResp, Class: slo.AnyClass, LatencyBound: bound},
				{Name: "stream", Kind: slo.KindStream, Class: slo.AnyClass, LatencyBound: bound},
				{Name: "vmtp", Kind: slo.KindVMTP, Class: slo.AnyClass, LatencyBound: bound},
			},
		}))
		if *transport == "datagram" {
			fmt.Fprintln(os.Stderr, "note: -slo observes reliable operations only; datagrams carry no objective (use -transport reqresp or stream)")
		}
	}

	var sys *core.System
	switch *topoKind {
	case "single":
		sys = core.New(core.SingleHub(*cabs), opts...)
	case "line":
		sys = core.New(core.Line(*hubs, *per), opts...)
	case "mesh":
		sys = core.New(core.Mesh(*rows, *cols, *per), opts...)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoKind)
		os.Exit(2)
	}
	n := sys.NumCABs()
	if *senders >= n {
		*senders = n - 1
	}

	// With -listen, publish the exposition on a periodic engine tick while
	// other events remain (so Run still terminates) and once more at the
	// end; the handler only ever reads published snapshots.
	var live *liveMetrics
	if *listen != "" {
		live = &liveMetrics{}
		addr, err := live.serve(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "listen:", err)
			os.Exit(1)
		}
		fmt.Printf("serving live metrics on http://%s/metrics\n", addr)
		var tick func()
		tick = func() {
			live.publish(sys)
			if sys.Eng.Pending() > 0 {
				sys.Eng.After(50*sim.Microsecond, tick)
			}
		}
		sys.Eng.After(50*sim.Microsecond, tick)
	}
	fmt.Printf("topology %s: %d HUBs, %d CABs; %d sender(s) -> CAB 0, %d x %dB via %s\n",
		*topoKind, len(sys.Net.Hubs()), n, *senders, *msgs, *size, *transport)

	// Receiver on CAB 0 (not used by reqresp, which runs a server).
	rx := sys.CAB(0)
	lat := trace.NewHistogram("delivery latency")
	delivered := 0
	if *transport != "reqresp" {
		mb := rx.Kernel.NewMailbox("in", 8<<20)
		rx.TP.Register(1, mb)
		rx.Kernel.SpawnDaemon("rx", func(th *kernel.Thread) {
			for {
				msg := mb.Get(th)
				delivered++
				mb.Release(msg)
			}
		})
	} else {
		srv := rx.Kernel.NewMailbox("srv", 8<<20)
		rx.TP.Register(7, srv)
		rx.Kernel.SpawnDaemon("server", func(th *kernel.Thread) {
			for {
				req := srv.Get(th)
				delivered++
				rx.TP.Respond(th, req, req.Bytes()[:1])
				srv.Release(req)
			}
		})
	}

	var sent, failed int
	active := *senders
	for s := 1; s <= *senders; s++ {
		st := sys.CAB(s)
		st.Kernel.Spawn("tx", func(th *kernel.Thread) {
			// The armed SLO engine ticks in virtual time forever; stop the
			// telemetry plane when the last sender finishes so Run drains.
			defer func() {
				if active--; active == 0 && *sloOn {
					sys.StopTelemetry()
				}
			}()
			for i := 0; i < *msgs; i++ {
				payload := make([]byte, *size)
				start := th.Proc().Now()
				var err error
				switch *transport {
				case "datagram":
					err = st.TP.SendDatagram(th, 0, 1, 0, payload)
				case "stream":
					err = st.TP.StreamSend(th, 0, 1, 0, payload)
				case "reqresp":
					_, err = st.TP.Request(th, 0, 7, 2, payload)
				default:
					fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
					os.Exit(2)
				}
				sent++
				if err != nil {
					failed++
				} else {
					lat.Add(th.Proc().Now() - start)
				}
			}
		})
	}

	end := sys.Run()
	fmt.Printf("\nfinished at %v (%d events)\n", end, sys.Eng.Executed())
	fmt.Printf("sent=%d failed=%d delivered=%d\n", sent, failed, delivered)
	fmt.Printf("sender-side completion: %v\n", lat)
	if delivered > 0 && end > 0 {
		fmt.Printf("aggregate goodput: %.2f Mb/s\n",
			float64(delivered*(*size))*8/end.Seconds()/1e6)
	}
	for i, st := range sys.CABs {
		dl := st.DL.Stats()
		tp := st.TP.Stats()
		if dl.PacketsSent+dl.PacketsReceived == 0 {
			continue
		}
		fmt.Printf("cab%-2d dl: sent=%d recv=%d framing=%d openTO=%d | tp: rtx=%d acks=%d ckdrop=%d mbdrop=%d | cpu busy=%v\n",
			i, dl.PacketsSent, dl.PacketsReceived, dl.FramingErrors, dl.OpenTimeouts,
			tp.Retransmits, tp.AcksSent, tp.ChecksumDrops, tp.MailboxDrops,
			st.Board.CPU.BusyTime())
	}

	if sys.SLO != nil {
		fmt.Printf("\nSLO status (bound %v):\n%s", *sloBound, sys.SLO.Text())
		if bundles := sys.SLO.Bundles(); len(bundles) > 0 {
			fmt.Printf("%d diagnosis bundle(s) captured\n", len(bundles))
			if *sloDump != "" {
				if err := os.WriteFile(*sloDump, bundles[0].JSON(), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "slodump:", err)
					os.Exit(1)
				}
				fmt.Printf("wrote diagnosis bundle to %s\n", *sloDump)
			}
		} else if *sloDump != "" {
			fmt.Fprintln(os.Stderr, "slodump: no alert fired, no bundle captured")
		}
	}

	if live != nil {
		live.publish(sys)
		fmt.Printf("\nrun complete; still serving the final snapshot on http://%s/metrics — interrupt to exit\n", *listen)
		select {}
	}
}

// chaosHorizon bounds a chaos run; ample time for every scenario's fault
// window plus recovery of a paced message train.
const chaosHorizon = 150 * sim.Millisecond

// chaosScenario builds the named fault scenario against sys. The named
// scenarios mirror experiment R1; "random" draws a seeded scenario from
// fault.RandomScenario.
func chaosScenario(name string, seed int64, sys *core.System) (fault.Scenario, error) {
	at := 2 * sim.Millisecond
	switch name {
	case "linkflap":
		return fault.Scenario{Name: name, Actions: []fault.Action{
			fault.LinkFlap{A: 0, B: 1, At: at, Duration: 15 * sim.Millisecond},
		}}, nil
	case "corruption":
		return fault.Scenario{Name: name, Actions: []fault.Action{
			fault.CorruptBurst{A: 0, B: 1, At: at, Duration: 10 * sim.Millisecond,
				Rate: 0.05, Seed: seed},
		}}, nil
	case "portstuck":
		port, ok := sys.Net.EdgePort(0, 1)
		if !ok {
			return fault.Scenario{}, fmt.Errorf("no edge between HUB 0 and HUB 1")
		}
		return fault.Scenario{Name: name, Actions: []fault.Action{
			fault.PortStuck{Hub: 0, Port: port, At: at, Duration: 10 * sim.Millisecond},
		}}, nil
	case "crash":
		return fault.Scenario{Name: name, Actions: []fault.Action{
			fault.CrashCAB{CAB: 0, At: 4 * sim.Millisecond, RebootAfter: 8 * sim.Millisecond},
		}}, nil
	case "storm":
		n := sys.NumCABs()
		return fault.Scenario{Name: name, Actions: []fault.Action{
			fault.CongestionStorm{Srcs: []int{1, 2}, Dst: n - 1,
				At: at, Duration: 8 * sim.Millisecond, Size: 900},
		}}, nil
	case "overload":
		n := sys.NumCABs()
		return fault.Scenario{Name: name, Actions: []fault.Action{
			fault.OverloadStorm{Srcs: []int{1, 2}, Dst: n - 1,
				At: at, Duration: 20 * sim.Millisecond,
				Class: transport.ClassBulk, Deadline: 500 * sim.Microsecond,
				Rate: 30000, Size: 2048, Outstanding: 128, Seed: seed},
		}}, nil
	case "random":
		return fault.RandomScenario(sys, seed, 4, 40*sim.Millisecond), nil
	default:
		return fault.Scenario{}, fmt.Errorf("unknown chaos scenario %q", name)
	}
}

// overloadSLO bounds the critical-class per-message p99 in the overload
// chaos scenario: with admission control shedding the bulk storm, critical
// requests must keep completing at healthy-system latencies.
const overloadSLO = 2 * sim.Millisecond

// runChaos drives a fault-injected mesh: corner-to-corner request traffic
// with application-level retry, the named scenario scheduled against it,
// and the detection/recovery stack (link probing, heartbeats, backoff)
// doing all repair. Returns a nonzero exit status if any message goes
// undelivered — CI's chaos smoke job keys off this. The overload scenario
// arms the overload-control subsystem, sends the application traffic at
// ClassCritical, and additionally fails the run if the critical-class
// per-message p99 violates overloadSLO while the bulk storm rages. On
// failure the flight-recorder post-mortem (recent events plus the
// link-state timeline) goes to stderr; dumpPath, when set, receives a copy
// of the post-mortem whatever the outcome, so CI can archive it.
func runChaos(name string, seed int64, rows, cols, msgs int, dumpPath string) int {
	if rows < 2 {
		rows = 2
	}
	if cols < 2 {
		cols = 2
	}
	overload := name == "overload"
	opts := []core.Option{
		core.WithMetrics(),
		core.WithFaultRecovery(),
		core.WithFlightRecorder(),
		core.WithStallWatchdog(0),
		func(p *core.Params) {
			p.Transport.ReqTimeout = 2 * sim.Millisecond
			p.Transport.ReqRetries = 3
		},
	}
	if overload {
		opts = append(opts, core.WithOverloadControl(transport.DefaultOverloadParams()))
	}
	sys := core.New(core.Mesh(rows, cols, 1), opts...)
	n := sys.NumCABs()

	sc, err := chaosScenario(name, seed, sys)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	inj := fault.New(sys, sc)
	inj.Schedule()

	fmt.Printf("chaos %s (seed %d): %dx%d mesh, %d CABs, %d messages CAB 0 -> CAB %d\n",
		name, seed, rows, cols, n, msgs, n-1)
	for _, a := range sc.Actions {
		fmt.Printf("  inject: %v\n", a)
	}

	// Receiver on the far corner dedups by application sequence number.
	seen := make(map[uint32]bool)
	delivered, duplicates := 0, 0
	rx := sys.CAB(n - 1)
	mb := rx.Kernel.NewMailbox("chaos-server", 512*1024)
	rx.TP.Register(9, mb)
	rx.Kernel.SpawnDaemon("chaos-server", func(th *kernel.Thread) {
		for {
			req := mb.Get(th)
			seq := binary.BigEndian.Uint32(req.Bytes())
			if seen[seq] {
				duplicates++
			} else {
				seen[seq] = true
				delivered++
			}
			rx.TP.Respond(th, req, req.Bytes()[:4])
			mb.Release(req)
		}
	})

	// The overload scenario's bulk storm needs a sink that answers, so the
	// storm exercises the receive-side admission path rather than just
	// timing out against an unregistered box.
	if overload {
		stormMB := rx.Kernel.NewMailbox("storm-server", 256*1024)
		rx.TP.Register(fault.StormBox, stormMB)
		rx.Kernel.SpawnDaemon("storm-server", func(th *kernel.Thread) {
			for {
				req := stormMB.Get(th)
				rx.TP.Respond(th, req, req.Bytes()[:1])
				stormMB.Release(req)
			}
		})
	}

	// Sender: at-least-once with application retry, paced so the message
	// train spans the fault window. Under the overload scenario the
	// application traffic is critical-class: the SLO says the storm must
	// not move its p99.
	var cls transport.SendOpts
	if overload {
		cls.Class = transport.ClassCritical
	}
	critLat := trace.NewHistogram("critical-class message latency")
	var doneAt sim.Time
	tx := sys.CAB(0)
	tx.Kernel.Spawn("chaos-client", func(th *kernel.Thread) {
		body := make([]byte, 64)
		for i := 0; i < msgs; i++ {
			binary.BigEndian.PutUint32(body, uint32(i))
			start := th.Proc().Now()
			for {
				resp, err := tx.TP.RequestOpts(th, n-1, 9, 1, body, cls)
				if err == nil && binary.BigEndian.Uint32(resp) == uint32(i) {
					break
				}
				th.Sleep(500 * sim.Microsecond)
			}
			critLat.Add(th.Proc().Now() - start)
			th.Sleep(sim.Millisecond)
		}
		doneAt = th.Proc().Now()
	})

	sys.RunUntil(chaosHorizon)
	sys.StopProbers()

	fmt.Printf("\ndelivered=%d/%d duplicates=%d completed_at=%v\n", delivered, msgs, duplicates, doneAt)
	if c := inj.DetectLatency().Count(); c > 0 {
		fmt.Printf("fault detection: %d event(s), mean latency %v\n", c, inj.DetectLatency().Mean())
	}
	if c := inj.RecoveryTime().Count(); c > 0 {
		fmt.Printf("recovery: %d event(s), mean time %v\n", c, inj.RecoveryTime().Mean())
	}
	tp := sys.CAB(0).TP.Stats()
	fmt.Printf("links failed=%d restored=%d; peer deaths=%d revivals=%d; crashes=%d\n",
		sys.Reg.Counter("net.links_failed").Value(), sys.Reg.Counter("net.links_restored").Value(),
		tp.PeersDied, tp.PeersRevived, sys.CAB(0).Board.Crashes())

	if overload {
		var sheds, expired, trips int64
		for _, c := range sys.CABs {
			sheds += c.TP.OverloadSheds()
			expired += c.TP.OverloadExpired()
			trips += c.TP.OverloadBreakerTrips()
		}
		fmt.Printf("overload control: sheds=%d expired=%d breaker-trips=%d; critical p99=%v (SLO %v)\n",
			sheds, expired, trips, critLat.Quantile(0.99), overloadSLO)
	}

	if dumpPath != "" {
		if err := os.WriteFile(dumpPath, []byte(sys.FR.PostMortem()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
		}
	}
	if delivered != msgs || doneAt == 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d of %d messages undelivered\n", msgs-delivered, msgs)
		sys.FR.Dump(os.Stderr)
		return 1
	}
	if p99 := critLat.Quantile(0.99); overload && p99 > overloadSLO {
		fmt.Fprintf(os.Stderr, "FAIL: critical-class p99 %v violates the %v SLO under the bulk storm\n",
			p99, overloadSLO)
		sys.FR.Dump(os.Stderr)
		return 1
	}
	if overload {
		fmt.Println("PASS: all messages delivered and the critical-class SLO held under overload")
		return 0
	}
	fmt.Println("PASS: all messages delivered after automatic recovery")
	return 0
}

// runCombChaos is the combining-under-link-flaps chaos smoke: every CAB of
// a mesh joins one collective group forced onto the HUB-combining
// algorithm, an inter-hub link flaps while allreduces and barriers stream
// through it, and each iteration's result is checked for exactness. Slots
// that lose a contributor must degrade to the endpoint fold without
// double-counting, so any inexact sum — or any rank that never finishes —
// exits 1. dumpPath, when set, receives the flight-recorder post-mortem
// whatever the outcome.
func runCombChaos(seed int64, rows, cols, iters int, dumpPath string) int {
	if rows < 2 {
		rows = 2
	}
	if cols < 2 {
		cols = 2
	}
	sys := core.New(core.Mesh(rows, cols, 2),
		core.WithMetrics(), core.WithFaultRecovery(),
		core.WithFlightRecorder(), core.WithHubCombining())
	n := sys.NumCABs()
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	g := coll.NewGroup(sys, 1, members, coll.WithAlgorithm("comb"), coll.WithMaxRetries(16))

	sc := fault.Scenario{Name: "comb", Actions: []fault.Action{
		fault.LinkFlap{A: 0, B: 1, At: 2 * sim.Millisecond, Duration: 1500 * sim.Microsecond},
	}}
	inj := fault.New(sys, sc)
	inj.Schedule()

	fmt.Printf("chaos comb (seed %d): %dx%d mesh, %d CABs all in one combining group, %d iterations\n",
		seed, rows, cols, n, iters)
	for _, a := range sc.Actions {
		fmt.Printf("  inject: %v\n", a)
	}

	wantSum := int64(n) * int64(n+1) / 2
	errs := make([]error, n)
	done := make([]bool, n)
	for r := 0; r < n; r++ {
		r := r
		c := g.Member(r)
		sys.CAB(g.CABOf(r)).Kernel.Spawn(fmt.Sprintf("comb-member-%d", r), func(th *kernel.Thread) {
			for i := 0; i < iters; i++ {
				th.Sleep(500 * sim.Microsecond)
				in := coll.Int64Bytes([]int64{int64(r + 1), int64(i)})
				out, err := c.Allreduce(th, coll.SumInt64, in)
				if err != nil {
					errs[r] = fmt.Errorf("iter %d allreduce: %w", i, err)
					return
				}
				vals := coll.BytesInt64(out)
				if vals[0] != wantSum || vals[1] != int64(n*i) {
					errs[r] = fmt.Errorf("iter %d: inexact result %v, want [%d %d]", i, vals, wantSum, n*i)
					return
				}
				if err := c.Barrier(th); err != nil {
					errs[r] = fmt.Errorf("iter %d barrier: %w", i, err)
					return
				}
			}
			done[r] = true
		})
	}
	sys.RunUntil(chaosHorizon)
	sys.StopProbers()

	fmt.Printf("\nhub_combined=%d fallback=%d; links failed=%d restored=%d\n",
		sys.Reg.Counter("coll.comb.hub_combined").Value(),
		sys.Reg.Counter("coll.comb.fallback").Value(),
		sys.Reg.Counter("net.links_failed").Value(),
		sys.Reg.Counter("net.links_restored").Value())
	if c := inj.DetectLatency().Count(); c > 0 {
		fmt.Printf("fault detection: %d event(s), mean latency %v\n", c, inj.DetectLatency().Mean())
	}

	if dumpPath != "" {
		if err := os.WriteFile(dumpPath, []byte(sys.FR.PostMortem()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dump:", err)
		}
	}
	fail := false
	for r := 0; r < n; r++ {
		if errs[r] != nil {
			fmt.Fprintf(os.Stderr, "FAIL: rank %d: %v\n", r, errs[r])
			fail = true
		} else if !done[r] {
			fmt.Fprintf(os.Stderr, "FAIL: rank %d never completed\n", r)
			fail = true
		}
	}
	if fail {
		sys.FR.Dump(os.Stderr)
		return 1
	}
	fmt.Println("PASS: every collective result exact across the link flap")
	return 0
}

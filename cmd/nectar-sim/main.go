// nectar-sim is a flag-driven scenario runner: build a topology, run a
// message workload over a chosen transport, and print latency/throughput
// statistics plus per-layer counters.
//
// Examples:
//
//	nectar-sim -topo single -cabs 4 -msgs 100 -size 1024
//	nectar-sim -topo mesh -rows 3 -cols 3 -per 1 -transport stream -size 65536
//	nectar-sim -topo line -hubs 4 -per 1 -ber 1e-5 -transport stream
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fiber"
	"repro/internal/kernel"
	"repro/internal/trace"
)

func main() {
	var (
		topoKind  = flag.String("topo", "single", "topology: single | line | mesh")
		cabs      = flag.Int("cabs", 4, "CABs (single topology)")
		hubs      = flag.Int("hubs", 3, "HUBs (line topology)")
		rows      = flag.Int("rows", 2, "mesh rows")
		cols      = flag.Int("cols", 2, "mesh cols")
		per       = flag.Int("per", 2, "CABs per HUB (line/mesh)")
		transport = flag.String("transport", "datagram", "datagram | stream | reqresp")
		msgs      = flag.Int("msgs", 50, "messages per sender")
		size      = flag.Int("size", 256, "message size in bytes")
		ber       = flag.Float64("ber", 0, "fiber bit error rate (per byte)")
		senders   = flag.Int("senders", 1, "concurrent sending CABs (all target CAB 0)")
	)
	flag.Parse()

	params := core.DefaultParams()
	if *ber > 0 {
		params.Topo.Errors = fiber.ErrorModel{BitErrorRate: *ber, Seed: 1}
	}

	var sys *core.System
	switch *topoKind {
	case "single":
		sys = core.NewSingleHub(*cabs, params)
	case "line":
		sys = core.NewLine(*hubs, *per, params)
	case "mesh":
		sys = core.NewMesh(*rows, *cols, *per, params)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topoKind)
		os.Exit(2)
	}
	n := sys.NumCABs()
	if *senders >= n {
		*senders = n - 1
	}
	fmt.Printf("topology %s: %d HUBs, %d CABs; %d sender(s) -> CAB 0, %d x %dB via %s\n",
		*topoKind, len(sys.Net.Hubs()), n, *senders, *msgs, *size, *transport)

	// Receiver on CAB 0 (not used by reqresp, which runs a server).
	rx := sys.CAB(0)
	lat := trace.NewHistogram("delivery latency")
	delivered := 0
	if *transport != "reqresp" {
		mb := rx.Kernel.NewMailbox("in", 8<<20)
		rx.TP.Register(1, mb)
		rx.Kernel.SpawnDaemon("rx", func(th *kernel.Thread) {
			for {
				msg := mb.Get(th)
				delivered++
				mb.Release(msg)
			}
		})
	} else {
		srv := rx.Kernel.NewMailbox("srv", 8<<20)
		rx.TP.Register(7, srv)
		rx.Kernel.SpawnDaemon("server", func(th *kernel.Thread) {
			for {
				req := srv.Get(th)
				delivered++
				rx.TP.Respond(th, req, req.Bytes()[:1])
				srv.Release(req)
			}
		})
	}

	var sent, failed int
	for s := 1; s <= *senders; s++ {
		st := sys.CAB(s)
		st.Kernel.Spawn("tx", func(th *kernel.Thread) {
			for i := 0; i < *msgs; i++ {
				payload := make([]byte, *size)
				start := th.Proc().Now()
				var err error
				switch *transport {
				case "datagram":
					err = st.TP.SendDatagram(th, 0, 1, 0, payload)
				case "stream":
					err = st.TP.StreamSend(th, 0, 1, 0, payload)
				case "reqresp":
					_, err = st.TP.Request(th, 0, 7, 2, payload)
				default:
					fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
					os.Exit(2)
				}
				sent++
				if err != nil {
					failed++
				} else {
					lat.Add(th.Proc().Now() - start)
				}
			}
		})
	}

	end := sys.Run()
	fmt.Printf("\nfinished at %v (%d events)\n", end, sys.Eng.Executed())
	fmt.Printf("sent=%d failed=%d delivered=%d\n", sent, failed, delivered)
	fmt.Printf("sender-side completion: %v\n", lat)
	if delivered > 0 && end > 0 {
		fmt.Printf("aggregate goodput: %.2f Mb/s\n",
			float64(delivered*(*size))*8/end.Seconds()/1e6)
	}
	for i, st := range sys.CABs {
		dl := st.DL.Stats()
		tp := st.TP.Stats()
		if dl.PacketsSent+dl.PacketsReceived == 0 {
			continue
		}
		fmt.Printf("cab%-2d dl: sent=%d recv=%d framing=%d openTO=%d | tp: rtx=%d acks=%d ckdrop=%d mbdrop=%d | cpu busy=%v\n",
			i, dl.PacketsSent, dl.PacketsReceived, dl.FramingErrors, dl.OpenTimeouts,
			tp.Retransmits, tp.AcksSent, tp.ChecksumDrops, tp.MailboxDrops,
			st.Board.CPU.BusyTime())
	}
}

package main

import (
	"bytes"
	"net"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// liveMetrics is nectar-sim's opt-in -listen endpoint: the single system's
// metrics registry (and sampler readings, when armed) as Prometheus text
// exposition at /metrics. The simulation goroutine renders and publishes
// the page through an atomic.Value — on a periodic engine tick during the
// run and once more at the end — so the HTTP handler never touches live
// simulation state.
type liveMetrics struct {
	blob atomic.Value // []byte
}

// publish renders the system's current exposition. Call only from the
// simulation goroutine (or after the run has finished).
func (lm *liveMetrics) publish(sys *core.System) {
	var b bytes.Buffer
	_ = obs.WriteProm(&b, sys.Reg.Snapshot())
	obs.WriteSamplerProm(&b, sys.Sampler)
	sys.Flows.WriteProm(&b)
	lm.blob.Store(b.Bytes())
}

func (lm *liveMetrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	blob, _ := lm.blob.Load().([]byte)
	if blob == nil {
		http.Error(w, "no metrics published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(blob)
}

// serve binds addr and serves /metrics for the life of the process,
// returning the bound address (useful with ":0").
func (lm *liveMetrics) serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		_ = http.Serve(ln, lm)
	}()
	return ln.Addr().String(), nil
}

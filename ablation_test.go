package nectar

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// knocks out one design decision and asserts the system gets measurably
// worse, demonstrating why the paper's design is the way it is.

import "testing"

func BenchmarkA1AckFastPath(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2Window(b *testing.B)      { benchExperiment(b, "A2") }
func BenchmarkA3Offload(b *testing.B)     { benchExperiment(b, "A3") }

func BenchmarkX1VLSIScaleUp(b *testing.B)  { benchExperiment(b, "X1") }
func BenchmarkX2HundredNodes(b *testing.B) { benchExperiment(b, "X2") }

func BenchmarkX3VMTP(b *testing.B) { benchExperiment(b, "X3") }
func BenchmarkX4DSM(b *testing.B)  { benchExperiment(b, "X4") }
